//! Mapping quantized weight matrices onto coded crossbar stacks.
//!
//! A `[out, in]` matrix of biased 16-bit weights is placed as follows
//! (§VII-A of the paper):
//!
//! 1. Columns are split into chunks of at most 128 (one crossbar's
//!    width); a matrix wider than 128 columns is "split evenly into
//!    chunks no larger than 128 columns".
//! 2. Within a chunk, logical rows are packed eight at a time into
//!    128-bit operand groups (for grouped schemes) or kept separate
//!    (unprotected / per-operand static schemes).
//! 3. Each group/operand is multiplied by the scheme's code constant,
//!    bit-sliced onto `c`-bit cells, and programmed into a stack of
//!    physical rows.
//!
//! For the data-aware schemes, step 3 is preceded by the per-array `A`
//! search of §V-B4 (the row-error model is re-derived for each candidate
//! because the encoded bit patterns change with `A`), and followed by a
//! table rebuild against the *programmed* array so that stuck-at faults
//! found at test time occupy the stuck-aware table half.

use ancode::data_aware::DataAwareConfig;
use ancode::{
    AbnCode, CodeError, ErrorListConfig, GroupLayout, OperandGroup, RowError, RowErrorModel,
};
use rand::Rng;
use wideint::U256;
use xbar::{rowerr, BitSlicer, CrossbarArray, DeviceParams, InputMask};

use crate::scheme::{static128_code, static16_code, total_check_bits};
use crate::{AccelConfig, ProtectionScheme};

/// One programmed stack of physical rows holding one coded operand
/// group (or one uncoded/per-operand logical row).
#[derive(Debug, Clone)]
pub struct Stack {
    /// The programmed crossbar rows.
    pub array: CrossbarArray,
    /// The arithmetic code protecting the stack (`None` for the
    /// unprotected baseline).
    pub code: Option<AbnCode>,
    /// Slicer describing the row ↔ bit-position correspondence.
    pub slicer: BitSlicer,
    /// Lane packer used to split group outputs back into logical rows.
    pub group: OperandGroup,
    /// First logical (output) row held by this stack.
    pub row_offset: usize,
    /// Number of real (non-padding) logical rows in the stack.
    pub lanes: usize,
}

/// A fully mapped matrix: chunks × stacks.
#[derive(Debug, Clone)]
pub struct MappedMatrix {
    /// Column range of each chunk.
    pub chunks: Vec<std::ops::Range<usize>>,
    /// Stacks per chunk.
    pub stacks: Vec<Vec<Stack>>,
    /// Logical output rows.
    pub out_dim: usize,
    /// Logical input columns.
    pub in_dim: usize,
}

impl MappedMatrix {
    /// Total physical rows across all stacks — the figure of merit for
    /// storage overhead.
    pub fn total_physical_rows(&self) -> usize {
        self.stacks
            .iter()
            .flatten()
            .map(|s| s.array.row_count())
            .sum()
    }

    /// Number of 128×128 crossbar arrays this mapping occupies.
    pub fn array_count(&self) -> usize {
        self.total_physical_rows().div_ceil(128)
    }
}

/// The error-list bounds used during mapping. Multi-row combinations
/// are capped at 3 rows (4 in the paper); with the hardware `A`
/// candidates the correction table holds at most 336 entries, which
/// 1–3-row events fill, and the smaller enumeration keeps per-array
/// construction fast enough for network-scale Monte Carlo.
pub fn mapping_error_list_config() -> ErrorListConfig {
    ErrorListConfig {
        max_rows_per_event: 3,
        top_rows: 10,
        min_probability: 1e-9,
        max_candidates: 2048,
    }
}

/// Maps a biased-weight matrix (`rows[out][in]`, entries in `0..2^16`)
/// onto crossbar stacks under `config`, programming the arrays with
/// `rng`.
///
/// # Errors
///
/// Propagates code-construction failures (which indicate a
/// misconfigured scheme rather than bad data).
pub fn map_matrix<R: Rng + ?Sized>(
    rows: &[Vec<u16>],
    config: &AccelConfig,
    rng: &mut R,
) -> Result<MappedMatrix, CodeError> {
    let out_dim = rows.len();
    let in_dim = rows.first().map_or(0, |r| r.len());
    assert!(out_dim > 0 && in_dim > 0, "matrix cannot be empty");
    assert!(
        rows.iter().all(|r| r.len() == in_dim),
        "ragged weight matrix"
    );

    // Split columns evenly into chunks of ≤ max_columns.
    let n_chunks = in_dim.div_ceil(config.max_columns);
    let per_chunk = in_dim.div_ceil(n_chunks);
    let chunks: Vec<std::ops::Range<usize>> = (0..n_chunks)
        .map(|i| i * per_chunk..((i + 1) * per_chunk).min(in_dim))
        .collect();

    let mut stacks = Vec::with_capacity(n_chunks);
    for cols in &chunks {
        let mut chunk_stacks = Vec::new();
        if config.scheme.is_grouped() {
            let ops = config.group.operands();
            let mut row = 0;
            while row < out_dim {
                let lanes = ops.min(out_dim - row);
                chunk_stacks.push(build_group_stack(
                    rows,
                    row,
                    lanes,
                    cols.clone(),
                    config,
                    rng,
                )?);
                row += lanes;
            }
        } else {
            for row in 0..out_dim {
                chunk_stacks.push(build_per_row_stack(
                    &rows[row],
                    row,
                    cols.clone(),
                    config,
                    rng,
                )?);
            }
        }
        stacks.push(chunk_stacks);
    }

    Ok(MappedMatrix {
        chunks,
        stacks,
        out_dim,
        in_dim,
    })
}

/// Builds one unprotected or per-operand-coded stack for a single
/// logical row.
fn build_per_row_stack<R: Rng + ?Sized>(
    weights: &[u16],
    row: usize,
    cols: std::ops::Range<usize>,
    config: &AccelConfig,
    rng: &mut R,
) -> Result<Stack, CodeError> {
    let code = match config.scheme {
        ProtectionScheme::None => None,
        ProtectionScheme::Static16 => Some(static16_code(config.device.bits_per_cell)),
        _ => {
            return Err(CodeError::InvalidLayout(
                "grouped scheme routed to the per-row stack builder".to_string(),
            ))
        }
    };
    let coded_bits = match &code {
        Some(c) => 16 + c.check_bits(),
        None => 16,
    };
    let slicer = BitSlicer::new(config.device.bits_per_cell, coded_bits);
    let words: Result<Vec<U256>, CodeError> = cols
        .clone()
        .map(|j| {
            let w = U256::from(weights[j] as u64);
            match &code {
                Some(c) => c.encode(w),
                None => Ok(w),
            }
        })
        .collect();
    let levels = slicer.slice_wide(&words?);
    let array = CrossbarArray::program(&levels, &config.device, rng);
    Ok(Stack {
        array,
        code,
        slicer,
        group: OperandGroup::new(GroupLayout::new(16, 1)?),
        row_offset: row,
        lanes: 1,
    })
}

/// Builds one grouped stack for up to eight logical rows.
fn build_group_stack<R: Rng + ?Sized>(
    rows: &[Vec<u16>],
    row_offset: usize,
    lanes: usize,
    cols: std::ops::Range<usize>,
    config: &AccelConfig,
    rng: &mut R,
) -> Result<Stack, CodeError> {
    let group = OperandGroup::new(config.group);
    let ops = config.group.operands();

    // Pack each column's weights (padding missing lanes with zero).
    let blocks: Vec<U256> = cols
        .clone()
        .map(|j| {
            let ops_vec: Vec<u64> = (0..ops)
                .map(|l| {
                    if l < lanes {
                        rows[row_offset + l][j] as u64
                    } else {
                        0
                    }
                })
                .collect();
            group.pack(&ops_vec)
        })
        .collect::<Result<_, _>>()?;

    let code = match config.scheme {
        ProtectionScheme::Static128 => static128_code(config.device.bits_per_cell),
        ProtectionScheme::DataAware {
            check_bits,
            hardware_candidates,
        } => select_data_aware_code(&blocks, check_bits, hardware_candidates, config)?,
        _ => {
            return Err(CodeError::InvalidLayout(
                "per-row scheme routed to the group stack builder".to_string(),
            ))
        }
    };

    let coded: Vec<U256> = blocks
        .iter()
        .map(|&b| code.encode(b))
        .collect::<Result<_, _>>()?;
    let coded_bits = config.group.data_bits() + code.check_bits();
    let slicer = BitSlicer::new(config.device.bits_per_cell, coded_bits);
    let levels = slicer.slice_wide(&coded);
    let array = CrossbarArray::program(&levels, &config.device, rng);

    // Rebuild the data-aware table against the programmed array so that
    // stuck-at faults discovered at test time get the split table.
    let code = if matches!(config.scheme, ProtectionScheme::DataAware { .. }) {
        let model = row_model_from_array(&array, &slicer, config.group.operand_bits());
        let da = DataAwareConfig {
            error_list: config.error_list,
        };
        ancode::data_aware::build_code(
            code.a(),
            code.b(),
            &model,
            config.group.data_bits(),
            &da,
        )?
    } else {
        code
    };

    Ok(Stack {
        array,
        code: Some(code),
        slicer,
        group,
        row_offset,
        lanes,
    })
}

/// Runs the per-array `A` search of §V-B4 over the candidate set.
fn select_data_aware_code(
    blocks: &[U256],
    check_bits: u32,
    hardware_candidates: bool,
    config: &AccelConfig,
) -> Result<AbnCode, CodeError> {
    let b = ProtectionScheme::B;
    let max_a = ((1u64 << check_bits) - 1) / b;
    let candidates: Vec<u64> = if hardware_candidates {
        ancode::search::DEFAULT_HARDWARE_CANDIDATES
            .iter()
            .copied()
            .filter(|&a| a <= max_a)
            .collect()
    } else {
        ancode::search::candidate_as(check_bits, b)
    };
    if candidates.is_empty() {
        return Err(CodeError::InvalidA(0));
    }
    let da = DataAwareConfig {
        error_list: config.error_list,
    };
    let result = ancode::search::select_a(
        &candidates,
        b,
        config.group.data_bits(),
        &da,
        |a| predicted_row_model(blocks, a, config),
    )?;
    Ok(result.code)
}

/// Predicts the row-error model of `blocks` when encoded with candidate
/// `a` (before programming — no stuck-at knowledge yet).
///
/// # Errors
///
/// [`CodeError::Overflow`] when a coded block would exceed 256 bits —
/// the candidate cannot encode these operands and the A-search rejects
/// it.
fn predicted_row_model(
    blocks: &[U256],
    a: u64,
    config: &AccelConfig,
) -> Result<RowErrorModel, CodeError> {
    let multiplier = a * ProtectionScheme::B;
    let coded_bits = config.group.data_bits() + total_check_bits(a, ProtectionScheme::B);
    let slicer = BitSlicer::new(config.device.bits_per_cell, coded_bits);
    let coded: Vec<U256> = blocks
        .iter()
        .map(|&b| b.checked_mul_u64(multiplier).ok_or(CodeError::Overflow))
        .collect::<Result<_, _>>()?;
    let levels = slicer.slice_wide(&coded);
    let rows = levels
        .iter()
        .enumerate()
        .map(|(r, row_levels)| {
            let composition = composition_of(row_levels, config.device.levels());
            let rate = rowerr::predict_composition(&composition, &config.device);
            RowError {
                lsb_bit: slicer.row_lsb(r as u32),
                p_high: rate.p_high,
                p_low: rate.p_low,
                stuck: false,
            }
        })
        .collect();
    Ok(RowErrorModel::new(rows, config.group.operand_bits()))
}

/// Derives the row-error model of a *programmed* array (actual levels,
/// stuck flags) for the post-programming table rebuild.
fn row_model_from_array(
    array: &CrossbarArray,
    slicer: &BitSlicer,
    operand_bits: u32,
) -> RowErrorModel {
    let rows = array
        .rows()
        .iter()
        .enumerate()
        .map(|(r, row)| {
            let mask = InputMask::all_ones(row.width());
            let composition = row.active_composition(&mask);
            let rate = rowerr::predict_composition(&composition, array.params());
            RowError {
                lsb_bit: slicer.row_lsb(r as u32),
                p_high: rate.p_high,
                p_low: rate.p_low,
                stuck: row.has_stuck(),
            }
        })
        .collect();
    RowErrorModel::new(rows, operand_bits)
}

/// Counts cells per level.
fn composition_of(levels: &[u32], n_levels: u32) -> Vec<u32> {
    let mut comp = vec![0u32; n_levels as usize];
    for &l in levels {
        comp[l as usize] += 1;
    }
    comp
}

/// The worst-case device-parameter row model for a `DeviceParams` —
/// used by tests and diagnostics.
pub fn worst_case_row_model(device: &DeviceParams, rows: u32, operand_bits: u32) -> RowErrorModel {
    let comp: Vec<u32> = {
        let mut c = vec![0u32; device.levels() as usize];
        if let Some(top) = c.last_mut() {
            *top = 128;
        }
        c
    };
    let rate = rowerr::predict_composition(&comp, device);
    let row_errors = (0..rows)
        .map(|r| RowError {
            lsb_bit: r * device.bits_per_cell,
            p_high: rate.p_high,
            p_low: rate.p_low,
            stuck: false,
        })
        .collect();
    RowErrorModel::new(row_errors, operand_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    fn small_matrix(out: usize, inp: usize) -> Vec<Vec<u16>> {
        (0..out)
            .map(|o| {
                (0..inp)
                    .map(|i| (32768i32 + ((o * 31 + i * 17) as i32 % 2000) - 1000) as u16)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn chunking_splits_wide_matrices() {
        let config = AccelConfig::new(ProtectionScheme::None);
        let m = map_matrix(&small_matrix(4, 300), &config, &mut rng()).unwrap();
        assert_eq!(m.chunks.len(), 3);
        // Evenly split: 100 columns each.
        assert!(m.chunks.iter().all(|c| c.len() == 100));
        assert_eq!(m.out_dim, 4);
        assert_eq!(m.in_dim, 300);
    }

    #[test]
    fn unprotected_mapping_rows_per_stack() {
        let config = AccelConfig::new(ProtectionScheme::None); // 2-bit cells
        let m = map_matrix(&small_matrix(3, 10), &config, &mut rng()).unwrap();
        assert_eq!(m.stacks[0].len(), 3);
        let stack = &m.stacks[0][0];
        assert!(stack.code.is_none());
        // 16-bit words on 2-bit cells → 8 physical rows.
        assert_eq!(stack.array.row_count(), 8);
        assert_eq!(stack.lanes, 1);
    }

    #[test]
    fn grouped_mapping_packs_eight_rows() {
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        let m = map_matrix(&small_matrix(20, 16), &config, &mut rng()).unwrap();
        // 20 rows → groups of 8, 8, 4.
        assert_eq!(m.stacks[0].len(), 3);
        assert_eq!(m.stacks[0][0].lanes, 8);
        assert_eq!(m.stacks[0][2].lanes, 4);
        let stack = &m.stacks[0][0];
        let code = stack.code.as_ref().unwrap();
        assert!(code.a() * code.b() < 512, "fits 9 check bits");
        // 128 data + ≤9 check bits on 2-bit cells.
        assert!(stack.array.row_count() >= 64 && stack.array.row_count() <= 69);
    }

    #[test]
    fn static128_row_count_matches_paper_example() {
        // "an eight operand group of 16 bit operands requires 35 bit
        // slices at 4-bits per cell" — for ~137 coded bits.
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_cell_bits(4);
        let m = map_matrix(&small_matrix(8, 8), &config, &mut rng()).unwrap();
        let rows = m.stacks[0][0].array.row_count();
        assert!((34..=35).contains(&rows), "rows {rows}");
    }

    #[test]
    fn data_aware_tables_are_data_dependent() {
        // A sparse (mostly zero-bias) group and a dense group should
        // produce different correction tables.
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        // Wide rows so the binomial row-error model predicts nonzero
        // probabilities (narrow rows cannot deviate past half an LSB).
        let sparse: Vec<Vec<u16>> = (0..8).map(|_| vec![32768u16; 96]).collect();
        let dense: Vec<Vec<u16>> = (0..8).map(|_| vec![0xFFFF; 96]).collect();
        let ms = map_matrix(&sparse, &config, &mut rng()).unwrap();
        let md = map_matrix(&dense, &config, &mut rng()).unwrap();
        let ts = ms.stacks[0][0].code.as_ref().unwrap().table().clone();
        let td = md.stacks[0][0].code.as_ref().unwrap().table().clone();
        assert_ne!(ts, td);
    }

    #[test]
    fn stuck_cells_trigger_split_tables() {
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.2);
        let m = map_matrix(&small_matrix(8, 32), &config, &mut rng()).unwrap();
        let code = m.stacks[0][0].code.as_ref().unwrap();
        let (_, stuck_half) = code.table().half_sizes();
        assert!(stuck_half > 0, "stuck-aware half should be populated");
    }

    #[test]
    fn physical_row_accounting() {
        let config = AccelConfig::new(ProtectionScheme::None);
        let m = map_matrix(&small_matrix(4, 10), &config, &mut rng()).unwrap();
        // 4 rows × 8 physical rows each.
        assert_eq!(m.total_physical_rows(), 32);
        assert_eq!(m.array_count(), 1);
    }

    #[test]
    fn five_bit_cells_supported() {
        for bits in 1..=5 {
            let config = AccelConfig::new(ProtectionScheme::data_aware(10))
                .with_cell_bits(bits)
                .with_fault_rate(0.0);
            let m = map_matrix(&small_matrix(8, 4), &config, &mut rng()).unwrap();
            let rows = m.stacks[0][0].array.row_count() as u32;
            // The selected A·B spans 6–10 check bits depending on the
            // data, so the coded width is 134–138 bits.
            let lo = (128 + 6u32).div_ceil(bits);
            let hi = (128 + 10u32).div_ceil(bits);
            assert!(
                (lo..=hi).contains(&rows),
                "bits {bits}: rows {rows} outside {lo}..={hi}"
            );
        }
    }
}
