//! An ISAAC-style memristive DNN accelerator with AN/ABN-protected
//! in-situ matrix-vector multiplication.
//!
//! This crate ties the substrates together into the system the paper
//! evaluates:
//!
//! - [`mapping`] places quantized weight matrices onto crossbar stacks —
//!   column chunks of at most 128, logical rows packed into 128-bit
//!   coded operand groups, encoded with the selected arithmetic code and
//!   bit-sliced onto multi-bit cells;
//! - [`ProtectionScheme`] enumerates the evaluated configurations
//!   (unprotected, `Static16`, `Static128`, and the data-aware `ABN-X`
//!   codes with 7–10 check bits);
//! - [`CrossbarEngine`] executes MVMs cycle by cycle: bit-serial input
//!   streaming, noisy row reads, shift-and-add reduction, and the error
//!   correction unit (residue → table → correction → `B` check) per
//!   group and cycle, mirroring Figure 9;
//! - [`sim`] runs Monte-Carlo network inference (optionally across
//!   threads) and reports misclassification rates;
//! - [`analytic`] predicts the same rates in closed form — moment
//!   propagation through every pipeline stage instead of sampling —
//!   with an [`analytic::ErrorModel`] policy for choosing between the
//!   two per configuration;
//! - [`cost`] reproduces the area/power/latency accounting of Table IV
//!   and §VIII-B;
//! - [`hierarchy`] plans networks onto the tile/IMA/array hierarchy and
//!   accounts resources and per-inference energy;
//! - [`remap`] implements fault-aware logical-row remapping (the
//!   Xia-et-al. direction the paper cites), composing with the codes.
//!
//! # Example
//!
//! ```
//! use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
//! use neural::{models, QuantizedNetwork};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let net = models::mlp1(&mut rng);
//! let qnet = QuantizedNetwork::from_network(&net);
//!
//! // A data-aware ABN-9 accelerator with 2-bit cells.
//! let config = AccelConfig::new(ProtectionScheme::data_aware(9));
//! let provider = CrossbarProvider::new(config, 42);
//! let mut engines = qnet.build_engines(&provider);
//! let image = vec![0.5f32; 784];
//! let class = qnet.predict(&image, &mut engines);
//! assert!(class < 10);
//! ```
//!
//! # Observability
//!
//! Built with the `obs` feature (which forwards to `repro-obs/enabled`;
//! the CLI always turns it on), the hot paths feed the workspace's
//! zero-dependency metric layer: per-MVM ECC counters
//! (`ecc_clean` … `ecc_uncoded`, matching [`DecodeStats`]), per-lane
//! error digits and magnitudes, `"mvm"`/`"program"`/`"shard"` spans,
//! and JSONL events from [`sim::evaluate`] (`shard_done`,
//! `shard_retry`) and [`campaign`] (`campaign_epoch`). Workers merge
//! thread-local metric shards at join points, so totals are exact and
//! deterministic; instrumentation never draws RNG values or enters
//! checkpoint state. Without the feature every hook compiles to a
//! no-op and `mvm_into` stays allocation-free either way (both proven
//! by `scripts/check.sh`). DESIGN.md §8 documents the model and the
//! event schema.

// Unsafe is forbidden outright except under the test-only `alloc-count`
// feature, whose counting global allocator must implement the unsafe
// `GlobalAlloc` trait. Even then it is denied by default and exempted
// for that single audited impl (see `alloc_count`).
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-count", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
pub mod analytic;
pub mod campaign;
pub mod cost;
mod engine;
mod error;
pub mod grid;
pub mod hierarchy;
pub mod mapping;
mod scheme;
pub mod remap;
pub mod serve;
pub mod sim;

pub use engine::{CrossbarEngine, CrossbarProvider, DecodeStats};
pub use error::AccelError;
pub use scheme::{AccelConfig, ProtectionScheme};
// Re-exported so downstream code can parameterize worker fault
// injection without naming the chaos crate separately.
pub use chaos::ShardChaos;
