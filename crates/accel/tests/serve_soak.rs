//! Serve-path soak tests: determinism under chaos, typed overload,
//! graceful wear-epoch swaps, restart replay, and (with the `obs`
//! feature) schema validation of a recorded serve event log.
//!
//! The load-bearing invariant, shared with the campaign chaos soak: a
//! fault schedule may cost retries, dropped lines, and torn frames,
//! but every *acknowledged* `ok` response is byte-identical to the one
//! a fault-free service would have sent for the same request content
//! at the same wear epoch.
//!
//! The obs sink and counter registry are process-global, so every test
//! holds `GUARD`; other test binaries are other processes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use accel::serve::{ServeConfig, Service};
use chaos::ChaosSchedule;

static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// A deliberately small service: 16 hidden units and a tiny train set
/// keep debug-mode programming and training in the milliseconds.
fn small_config(seed: u64, chaos: Option<ChaosSchedule>) -> ServeConfig {
    ServeConfig {
        seed,
        workers: 2,
        queue_capacity: 16,
        batch_max: 8,
        linger_ms: 1,
        request_retries: 5,
        hidden_units: 16,
        train_examples: 40,
        test_examples: 10,
        train_epochs: 1,
        chaos,
        ..ServeConfig::default()
    }
}

/// A line-oriented test client. Reads use a short timeout so a chaos
/// run can distinguish "response dropped" from "response pending".
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(port: u16) -> Client {
        let writer = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client {
            writer,
            reader,
            line: String::new(),
        }
    }

    /// Sends a raw line; returns false when the connection is dead.
    fn send(&mut self, line: &str) -> bool {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .is_ok()
    }

    /// Reads one complete line, waiting up to `wait`. `None` on
    /// timeout or connection loss. Partial (torn) data that never
    /// gains a newline is discarded on the next complete read.
    fn read_line(&mut self, wait: Duration) -> Option<String> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {
                    if self.line.ends_with('\n') {
                        let mut out = std::mem::take(&mut self.line);
                        out.truncate(out.trim_end().len());
                        return Some(out);
                    }
                    // EOF-terminated partial line: connection gone.
                    return None;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Sends and waits for the first *valid* response to `id`,
    /// re-sending (same bytes — replays are idempotent by design) when
    /// chaos drops the request or the response. Torn response
    /// fragments fail the `id` match and are skipped.
    fn roundtrip_retry(&mut self, port: u16, line: &str, id: &str) -> String {
        for _attempt in 0..60 {
            if !self.send(line) {
                *self = Client::connect(port);
                continue;
            }
            // One request may surface several lines (torn fragments,
            // stale re-sent answers); scan briefly for a match.
            for _ in 0..10 {
                let Some(response) = self.read_line(Duration::from_millis(300)) else {
                    break;
                };
                // A torn write truncates strictly before the final
                // `}` (the only `}` in a response line), so prefix +
                // terminator together identify a complete response.
                if response.starts_with(&format!("{{\"id\":\"{id}\",")) && response.ends_with('}') {
                    return response;
                }
            }
            // Dropped somewhere (or the connection died): reconnect if
            // needed and replay.
            if self.send("") {
                continue;
            }
            *self = Client::connect(port);
        }
        panic!("no valid response for {id} after 60 attempts");
    }

    /// Reads the current wear epoch via `{"admin":"stats"}` (admin
    /// responses bypass write chaos, but the *request* line can still
    /// be eaten by read chaos — retry until a stats line arrives).
    fn epoch(&mut self, port: u16) -> u64 {
        for _ in 0..60 {
            if !self.send("{\"admin\":\"stats\"}") {
                *self = Client::connect(port);
                continue;
            }
            for _ in 0..10 {
                let Some(response) = self.read_line(Duration::from_millis(300)) else {
                    break;
                };
                if let Some(rest) = response.split("\"epoch\":").nth(1) {
                    if response.contains("\"type\":\"stats\"") {
                        let digits: String =
                            rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                        if let Ok(e) = digits.parse() {
                            return e;
                        }
                    }
                }
            }
        }
        panic!("no stats response after 60 attempts");
    }

    /// Advances the wear epoch to exactly `target`, tolerating chaos
    /// eating advance frames (stats is re-checked before every retry,
    /// so the epoch never overshoots).
    fn advance_epoch_to(&mut self, port: u16, target: u64) {
        for _ in 0..60 {
            if self.epoch(port) >= target {
                return;
            }
            let _ = self.send("{\"admin\":\"advance_epoch\"}");
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("epoch never reached {target}");
    }
}

fn request_line(id: &str, scheme: &str, samples: &[usize]) -> String {
    let list: Vec<String> = samples.iter().map(|s| s.to_string()).collect();
    format!(
        "{{\"id\":\"{id}\",\"scheme\":\"{scheme}\",\"samples\":[{}]}}",
        list.join(",")
    )
}

/// The request mix both soak runs send: three schemes (hashing to
/// different workers), varied sample lists, stable ids derived from
/// content position so clean and chaos responses are byte-comparable.
fn soak_requests() -> Vec<(String, String)> {
    let mut requests = Vec::new();
    let schemes = ["ABN-9", "NoECC", "Static16"];
    let sample_lists: [&[usize]; 4] = [&[0], &[1, 2], &[3, 4, 5], &[0, 9]];
    for (si, scheme) in schemes.iter().enumerate() {
        for (li, samples) in sample_lists.iter().enumerate() {
            let id = format!("r{si}-{li}");
            requests.push((id.clone(), request_line(&id, scheme, samples)));
        }
    }
    requests
}

/// Epoch embedded in an `ok` response line.
fn response_epoch(line: &str) -> u64 {
    let rest = line.split("\"epoch\":").nth(1).expect("epoch field");
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("epoch digits")
}

/// Runs the soak sequence against one service: answer every request at
/// epoch 0, advance, then re-send until every request has an epoch-1
/// answer. Returns `(id, epoch) → response line` for every `ok`
/// response observed (including stale epoch-0 answers served during
/// the graceful swap window).
fn run_soak(service: &Service) -> HashMap<(String, u64), String> {
    let port = service.port();
    let mut client = Client::connect(port);
    let mut observed: HashMap<(String, u64), String> = HashMap::new();
    let requests = soak_requests();
    for (id, line) in &requests {
        let response = client.roundtrip_retry(port, line, id);
        assert!(
            response.contains("\"ok\":true"),
            "epoch-0 request {id} not served: {response}"
        );
        observed.insert((id.clone(), response_epoch(&response)), response);
    }
    client.advance_epoch_to(port, 1);
    // Keep replaying until every request has been answered by an
    // epoch-1 engine set (the graceful swap completes per scheme).
    for round in 0..80 {
        let mut all_fresh = true;
        for (id, line) in &requests {
            if observed.contains_key(&(id.clone(), 1)) {
                continue;
            }
            let response = client.roundtrip_retry(port, line, id);
            assert!(
                response.contains("\"ok\":true"),
                "post-advance request {id} not served: {response}"
            );
            let epoch = response_epoch(&response);
            observed.insert((id.clone(), epoch), response);
            if epoch == 0 {
                all_fresh = false;
            }
        }
        if all_fresh && requests.iter().all(|(id, _)| observed.contains_key(&(id.clone(), 1))) {
            break;
        }
        assert!(round < 79, "some scheme never swapped to epoch 1");
        std::thread::sleep(Duration::from_millis(20));
    }
    observed
}

/// Tentpole soak: a chaos service (standard schedule, seed 7 — the
/// same golden seed the campaign soak pins) must answer every
/// acknowledged request byte-identically to a fault-free service at
/// the same master seed, keyed by `(request content, epoch served)`.
#[test]
fn chaos_acknowledged_responses_match_clean_oracle() {
    let _g = guard();
    let clean = Service::start(small_config(7, None)).expect("clean service");
    let oracle = run_soak(&clean);
    clean.shutdown();
    let clean_report = clean.join();
    assert!(clean_report.stats.served > 0);
    assert_eq!(clean_report.stats.dropped_responses, 0);

    let chaotic =
        Service::start(small_config(7, Some(ChaosSchedule::standard(7)))).expect("chaos service");
    let observed = run_soak(&chaotic);
    chaotic.shutdown();
    let report = chaotic.join();

    for (key, line) in &observed {
        match oracle.get(key) {
            Some(expected) => assert_eq!(
                line, expected,
                "response for {key:?} diverged from the fault-free oracle"
            ),
            // A stale epoch-0 answer after the advance is timing-
            // dependent; if the clean run swapped faster it has no
            // oracle entry. Re-derive it from the epoch-0 phase, where
            // every id was answered at epoch 0.
            None => {
                let epoch0 = oracle
                    .get(&(key.0.clone(), 0))
                    .unwrap_or_else(|| panic!("no oracle entry at all for {key:?}"));
                assert_eq!(line, epoch0, "stale response for {key:?} diverged");
            }
        }
    }
    // The schedule really fired: across hundreds of socket and swap
    // rolls at the standard rates, a zero-fault run is (1 - 0.13)^n
    // -level improbable — a silent all-clear means the seams are not
    // actually wired.
    assert!(
        report.stats.dropped_responses + report.stats.retries + report.stats.swap_faults > 0
            || report.stats.rejected_bad > 0,
        "chaos schedule injected nothing across the whole soak"
    );
}

/// Overload: a single slow worker with a 2-deep queue must answer the
/// flood with typed `overloaded` rejections (bounded memory, no
/// panic), then serve normally once drained.
#[test]
fn overload_yields_typed_rejections_and_recovers() {
    let _g = guard();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        linger_ms: 30,
        ..small_config(11, None)
    };
    let service = Service::start(config).expect("service");
    let port = service.port();
    let mut client = Client::connect(port);

    const FLOOD: usize = 24;
    for i in 0..FLOOD {
        let id = format!("f{i}");
        assert!(client.send(&request_line(&id, "NoECC", &[0])));
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    while let Some(line) = client.read_line(Duration::from_secs(5)) {
        if line.contains("\"ok\":true") {
            ok += 1;
        } else if line.contains("\"error\":\"overloaded\"") {
            overloaded += 1;
        } else {
            panic!("unexpected response in flood: {line}");
        }
        if ok + overloaded == FLOOD {
            break;
        }
    }
    assert_eq!(ok + overloaded, FLOOD, "every request gets exactly one answer");
    assert!(overloaded > 0, "a 2-deep queue must reject part of a {FLOOD}-burst");
    assert!(ok > 0, "queued requests must still be served");

    // Recovered: the same connection serves normally again.
    let line = request_line("after", "NoECC", &[1]);
    let response = client.roundtrip_retry(port, &line, "after");
    assert!(response.contains("\"ok\":true"), "post-flood request failed: {response}");

    // A request whose deadline expires while the worker lingers is
    // answered late-but-honestly.
    assert!(client.send(&request_line("late", "NoECC", &[0, 1, 2]).replace('}', ",\"deadline_ms\":1}")));
    let response = client.read_line(Duration::from_secs(5)).expect("deadline response");
    assert!(
        response.contains("\"error\":\"deadline_exceeded\""),
        "expected deadline_exceeded, got: {response}"
    );

    service.shutdown();
    let report = service.join();
    assert_eq!(report.stats.rejected_overloaded as usize, overloaded);
    assert!(report.stats.rejected_deadline >= 1);
}

/// Malformed frames are isolated: each gets a `bad_request` response
/// and the connection keeps serving valid work.
#[test]
fn malformed_frames_are_isolated() {
    let _g = guard();
    let service = Service::start(small_config(13, None)).expect("service");
    let port = service.port();
    let mut client = Client::connect(port);
    for garbage in [
        "not json at all",
        "{\"id\":\"g1\",\"scheme\":\"ABN-9\"}",
        "{\"id\":\"g2\",\"scheme\":\"NotAScheme\",\"samples\":[0]}",
        "{\"id\":\"g3\",\"scheme\":\"NoECC\",\"samples\":[999]}",
        "[1,2,3]",
    ] {
        assert!(client.send(garbage));
        let response = client.read_line(Duration::from_secs(5)).expect("bad response");
        assert!(
            response.contains("\"error\":\"bad_request\""),
            "garbage {garbage:?} drew {response}"
        );
    }
    let line = request_line("ok1", "NoECC", &[0]);
    let response = client.roundtrip_retry(port, &line, "ok1");
    assert!(response.contains("\"ok\":true"));
    service.shutdown();
    let report = service.join();
    assert_eq!(report.stats.rejected_bad, 5);
    assert!(report.stats.served >= 1);
}

/// Epoch advancement is graceful: the first request after an advance
/// is served by the stale set (epoch 0 in its response), and the
/// background swap then takes over without ever failing a request.
#[test]
fn epoch_advance_swaps_gracefully() {
    let _g = guard();
    let service = Service::start(small_config(17, None)).expect("service");
    let port = service.port();
    let mut client = Client::connect(port);

    let line = request_line("w0", "ABN-9", &[0, 1]);
    let first = client.roundtrip_retry(port, &line, "w0");
    assert_eq!(response_epoch(&first), 0);

    client.advance_epoch_to(port, 1);
    let stale = client.roundtrip_retry(port, &line, "w0");
    assert_eq!(
        response_epoch(&stale),
        0,
        "the request racing the swap must be served by the old set, not blocked"
    );
    assert_eq!(stale, first, "stale answers replay the epoch-0 bytes exactly");

    let mut swapped = None;
    for _ in 0..80 {
        let response = client.roundtrip_retry(port, &line, "w0");
        if response_epoch(&response) == 1 {
            swapped = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let swapped = swapped.expect("swap to epoch 1 never completed");
    assert!(swapped.contains("\"ok\":true"));

    service.shutdown();
    let report = service.join();
    assert!(report.stats.swaps >= 1, "no engine_swap recorded");
    assert!(report.stats.pool_stale >= 1, "no stale-served request recorded");
}

/// Restart replay: a fresh service at the same master seed answers the
/// same requests with byte-identical lines — the property the
/// `check.sh` SIGKILL smoke leans on.
#[test]
fn restart_replays_bit_identical_responses() {
    let _g = guard();
    let requests = soak_requests();
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for _run in 0..2 {
        let service = Service::start(small_config(23, None)).expect("service");
        let port = service.port();
        let mut client = Client::connect(port);
        let mut lines = Vec::new();
        for (id, line) in &requests {
            lines.push(client.roundtrip_retry(port, line, id));
        }
        service.shutdown();
        service.join();
        transcripts.push(lines);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "two services at one seed must serve identical bytes"
    );
}

/// Satellite (f): a recorded serve event log validates field-by-field
/// against `obs::schema` — every line parses, carries the current
/// schema version, a known type, and exactly the spec'd fields with
/// the spec'd JSON kinds.
#[cfg(feature = "obs")]
#[test]
fn serve_event_log_matches_schema() {
    use serde::Value;

    let _g = guard();
    obs::reset();
    obs::events::log_to_memory();

    let service = Service::start(small_config(29, None)).expect("service");
    let port = service.port();
    let mut client = Client::connect(port);
    // Exercise every serve event type: ok requests (request_done), a
    // malformed frame (request_rejected), and an epoch advance
    // (engine_swap once the background program lands).
    let line = request_line("e0", "ABN-9", &[0, 1, 2]);
    client.roundtrip_retry(port, &line, "e0");
    assert!(client.send("garbage"));
    let _ = client.read_line(Duration::from_secs(2));
    client.advance_epoch_to(port, 1);
    for _ in 0..80 {
        let response = client.roundtrip_retry(port, &line, "e0");
        if response_epoch(&response) == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    service.shutdown();
    service.join();

    let lines = obs::events::take_memory();
    obs::events::stop_logging();
    assert!(!lines.is_empty(), "serve run recorded no events");

    struct Echo(Value);
    impl serde::Deserialize for Echo {
        fn from_value(value: &Value) -> Result<Echo, String> {
            Ok(Echo(value.clone()))
        }
    }

    let mut seen_types: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in &lines {
        let value = serde_json::from_str::<Echo>(line)
            .unwrap_or_else(|e| panic!("unparseable event line ({e}): {line}"))
            .0;
        let fields = value
            .as_object()
            .unwrap_or_else(|| panic!("event line is not an object: {line}"));
        match value.get("v") {
            Some(&Value::Number(n)) if n == obs::schema::VERSION as f64 => {}
            other => panic!("bad schema version {other:?} in: {line}"),
        }
        match value.get("ts_ns") {
            Some(&Value::Number(n)) if n >= 0.0 && n.fract() == 0.0 => {}
            other => panic!("bad ts_ns {other:?} in: {line}"),
        }
        let ty = match value.get("type") {
            Some(Value::String(s)) => s.clone(),
            other => panic!("bad type {other:?} in: {line}"),
        };
        let spec = obs::schema::spec_for(&ty)
            .unwrap_or_else(|| panic!("event type {ty} not in obs::schema::EVENTS: {line}"));
        for field in spec.fields {
            let got = value
                .get(field.name)
                .unwrap_or_else(|| panic!("{ty} line missing field {}: {line}", field.name));
            let kind_ok = match field.kind {
                obs::schema::FieldKind::U64 => {
                    matches!(got, &Value::Number(n) if n >= 0.0 && n.fract() == 0.0)
                }
                obs::schema::FieldKind::F64 => matches!(got, Value::Number(_)),
                obs::schema::FieldKind::Str => matches!(got, Value::String(_)),
                obs::schema::FieldKind::Bool => matches!(got, Value::Bool(_)),
            };
            assert!(
                kind_ok,
                "{ty} field {} has wrong kind (want {:?}): {line}",
                field.name, field.kind
            );
        }
        for (key, _) in fields {
            let known = key == "v"
                || key == "ts_ns"
                || key == "type"
                || spec.fields.iter().any(|f| f.name == key);
            assert!(known, "{ty} line carries undocumented field {key}: {line}");
        }
        seen_types.insert(ty);
    }
    for expected in ["request_done", "request_rejected", "engine_swap"] {
        assert!(
            seen_types.contains(expected),
            "serve run never emitted {expected}; saw {seen_types:?}"
        );
    }
}
