//! The allocation sanitizer: proves `CrossbarEngine::mvm_into` performs
//! **zero** heap allocations in steady state, turning PR 1's allocation
//! audit from documentation into an enforced invariant.
//!
//! Runs only under `--features alloc-count` (see `scripts/check.sh`),
//! which installs the counting global allocator below. The measurement
//! protocol per protection scheme:
//!
//! 1. program an engine and run two warm-up MVMs — the first call grows
//!    every scratch buffer to its high-water mark (and `out` to the
//!    output dimension);
//! 2. wrap three further calls in `assert_no_alloc!`, each of which
//!    must not allocate at all.
//!
//! Noise is left at its realistic defaults so the decode path exercises
//! corrections and retries, not just the clean fast path.

#![cfg(feature = "alloc-count")]

use accel::alloc_count::CountingAllocator;
use accel::{assert_no_alloc, AccelConfig, CrossbarProvider, ProtectionScheme};
use neural::{MvmEngine, MvmEngineProvider, QuantizedMatrix, Tensor};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn quantized(out: usize, inp: usize, seed: u64) -> QuantizedMatrix {
    let data: Vec<f32> = (0..out * inp)
        .map(|i| (((i as u64 * 2654435761 + seed) % 1000) as f32 / 500.0) - 1.0)
        .collect();
    QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![out, inp], data))
}

#[test]
fn counting_allocator_is_live() {
    // Guard against a vacuous sanitizer: if the global allocator were
    // not installed (or the counter broke), every assert_no_alloc!
    // would trivially pass. Prove the counter moves for a real heap
    // allocation first.
    let before = accel::alloc_count::thread_alloc_ops();
    let v: Vec<u64> = Vec::with_capacity(32);
    let after = accel::alloc_count::thread_alloc_ops();
    drop(v);
    assert!(
        after > before,
        "counting allocator not engaged: Vec::with_capacity(32) was not counted"
    );
}

#[test]
fn mvm_into_steady_state_is_allocation_free() {
    // The three schemes the paper's headline figures compare (and the
    // bench baseline tracks): unprotected, static AN, data-aware ABN-9.
    let schemes = [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ];
    let m = quantized(12, 128, 42);
    let input: Vec<u16> = (0..128u64).map(|i| ((i * 2654435761) % 65536) as u16).collect();

    for scheme in schemes {
        let label = scheme.label();
        let provider = CrossbarProvider::new(AccelConfig::new(scheme), 1234);
        let mut engine = provider.build(&m);
        let mut out = Vec::new();

        // Warm-up: the first call takes every one-time growth path
        // (scratch high-water marks, the output buffer); the second
        // catches any path the first call happened to skip.
        engine.mvm_into(&input, &mut out);
        engine.mvm_into(&input, &mut out);

        for call in 0..3 {
            assert_no_alloc!(
                format_args!("{label} steady-state mvm_into call {call}"),
                engine.mvm_into(&input, &mut out)
            );
        }
        // The engine still produces the full output vector.
        assert_eq!(out.len(), 12, "{label} output dimension");
    }
}

#[test]
fn mvm_batch_into_steady_state_is_allocation_free() {
    // Same protocol for the batched kernel: an engine whose config
    // declares the batch up front pre-sizes the batch-only scratch
    // (mask planes, conductance planes, trap∩level words) at
    // programming time, so batched steady state allocates nothing
    // either.
    let batch = 8usize;
    let m = quantized(12, 128, 42);
    let input: Vec<u16> = (0..batch as u64 * 128)
        .map(|i| ((i * 2654435761) % 65536) as u16)
        .collect();

    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ] {
        let label = scheme.label();
        let provider = CrossbarProvider::new(AccelConfig::new(scheme).with_batch(batch), 1234);
        let mut engine = provider.build(&m);
        let mut out = Vec::new();

        engine.mvm_batch_into(&input, batch, &mut out);
        engine.mvm_batch_into(&input, batch, &mut out);

        for call in 0..3 {
            assert_no_alloc!(
                format_args!("{label} steady-state mvm_batch_into call {call}"),
                engine.mvm_batch_into(&input, batch, &mut out)
            );
        }
        assert_eq!(out.len(), batch * 12, "{label} output dimension");
    }
}
