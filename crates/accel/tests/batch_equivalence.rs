//! Batched-kernel equivalence: the contract DESIGN.md §2 documents.
//!
//! - Batch-of-1 through `mvm_batch_into` is *bit-identical* to the
//!   scalar `mvm_into` kernel, noise and all (it delegates).
//! - With every noise source disabled, a batch of N equals N sequential
//!   single-vector calls for every protection scheme — the batched
//!   path reorders the noise *draws*, never the arithmetic.
//! - Ragged and oversized batches at the `sim::evaluate` level reduce
//!   to the same per-example results.
//!
//! `scripts/check.sh` runs this binary explicitly as the batch smoke
//! gate.

use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use neural::{MvmEngineProvider, QuantizedMatrix, QuantizedNetwork, Tensor};

/// All three scheme families the goldens pin.
fn schemes() -> [ProtectionScheme; 3] {
    [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ]
}

/// A reproducible 14×96 quantized matrix.
fn matrix() -> QuantizedMatrix {
    let weights: Vec<f32> = (0..14 * 96)
        .map(|i| ((i as f32) * 0.291).cos() * 0.6)
        .collect();
    QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![14, 96], weights))
}

/// `n` input vectors of width 96, all distinct.
fn inputs(n: usize) -> Vec<u16> {
    (0..n as u64 * 96)
        .map(|i| ((i * 2654435761 + 12345) % 65536) as u16)
        .collect()
}

/// A config with every noise source off, so scalar and batched kernels
/// must agree exactly despite drawing from the RNG in different orders.
fn noiseless(scheme: ProtectionScheme, batch: usize) -> AccelConfig {
    let mut config = AccelConfig::new(scheme).with_batch(batch);
    config.device.rtn_state_probability = 0.0;
    config.device.programming_tolerance = 0.0;
    config.device.fault_rate = 0.0;
    config.device.bandwidth = 0.0;
    config
}

#[test]
fn batch_of_one_is_bit_identical_under_full_noise() {
    let m = matrix();
    let ins = inputs(1);
    for scheme in schemes() {
        let label = scheme.label();
        let config = AccelConfig::new(scheme);
        let mut scalar = CrossbarProvider::new(config.clone(), 99).build(&m);
        let mut batched = CrossbarProvider::new(config, 99).build(&m);
        let mut out_s = Vec::new();
        let mut out_b = Vec::new();
        // Several calls so the RNG streams stay in lockstep across
        // calls, not just on the first one.
        for _ in 0..3 {
            scalar.mvm_into(&ins, &mut out_s);
            batched.mvm_batch_into(&ins, 1, &mut out_b);
            assert_eq!(out_s, out_b, "{label}");
        }
    }
}

#[test]
fn noiseless_batch_of_eight_matches_sequential() {
    let m = matrix();
    let batch = 8;
    let ins = inputs(batch);
    for scheme in schemes() {
        let label = scheme.label();
        let mut seq = CrossbarProvider::new(noiseless(scheme.clone(), 1), 7).build(&m);
        let mut bat = CrossbarProvider::new(noiseless(scheme, batch), 7).build(&m);
        let mut expected = Vec::new();
        let mut one = Vec::new();
        for v in 0..batch {
            seq.mvm_into(&ins[v * 96..(v + 1) * 96], &mut one);
            expected.extend_from_slice(&one);
        }
        let mut got = Vec::new();
        bat.mvm_batch_into(&ins, batch, &mut got);
        assert_eq!(expected, got, "{label}");
    }
}

#[test]
fn engine_accepts_batches_beyond_its_configured_size() {
    // The configured batch pre-sizes scratch; a larger call still
    // computes correctly (it may just allocate once to grow).
    let m = matrix();
    let batch = 6;
    let ins = inputs(batch);
    let mut small = CrossbarProvider::new(noiseless(ProtectionScheme::data_aware(9), 2), 7)
        .build(&m);
    let mut sized = CrossbarProvider::new(noiseless(ProtectionScheme::data_aware(9), batch), 7)
        .build(&m);
    let mut out_small = Vec::new();
    let mut out_sized = Vec::new();
    small.mvm_batch_into(&ins, batch, &mut out_small);
    sized.mvm_batch_into(&ins, batch, &mut out_sized);
    assert_eq!(out_small, out_sized);
}

#[test]
fn evaluate_handles_ragged_and_oversized_batches() {
    use accel::sim::evaluate;
    use rand::SeedableRng;

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let net = neural::Network::new(vec![
        Box::new(neural::Flatten::new()),
        Box::new(neural::Dense::new(64, 10, &mut rng)),
    ]);
    let qnet = QuantizedNetwork::from_network(&net);
    let n = 5;
    let images = Tensor::from_vec(
        vec![n, 1, 8, 8],
        (0..n * 64).map(|i| ((i % 17) as f32) / 17.0).collect(),
    );
    let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();

    let base = evaluate(&qnet, &images, &labels, &noiseless(ProtectionScheme::None, 1), 3, 1)
        .expect("batch 1");
    // 5 examples: batch 2 leaves a ragged final window of 1; batch 3 a
    // window of 2; batch 9 exceeds the example count entirely.
    for batch in [2usize, 3, 9] {
        let batched = evaluate(
            &qnet,
            &images,
            &labels,
            &noiseless(ProtectionScheme::None, batch),
            3,
            1,
        )
        .expect("batched");
        assert_eq!(base, batched, "batch {batch}");
    }
}
