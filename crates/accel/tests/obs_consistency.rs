//! Observability consistency: the metric layer must *agree with* the
//! values the simulation returns, and the event log must match the
//! schema DESIGN.md §8 documents (`obs::schema`).
//!
//! Run with `cargo test -p accel --features obs --test obs_consistency`
//! (the workspace build enables `obs` transitively through the CLI).
//!
//! Counters and the event sink are process-global, so every test holds
//! `GUARD` and resets the registry first; other test binaries run in
//! other processes and cannot interfere.

#![cfg(feature = "obs")]

use accel::campaign::{Campaign, CampaignConfig};
use accel::sim::evaluate;
use accel::{AccelConfig, ProtectionScheme, ShardChaos};
use neural::{QuantizedNetwork, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// A tiny trained network and test set. The counter/return-value
/// equality under test is independent of network size, so this uses a
/// deliberately small two-layer perceptron (the full `mlp2` recipe
/// would multiply the scheme × thread matrix cost ~25x for no extra
/// coverage).
fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut net = neural::Network::new(vec![
        Box::new(neural::Flatten::new()),
        Box::new(neural::Dense::new(784, 24, &mut rng)),
        Box::new(neural::Relu::new()),
        Box::new(neural::Dense::new(24, 10, &mut rng)),
    ]);
    let mut train = neural::data::digits(200, 1);
    neural::data::shuffle(&mut train, 2);
    for _ in 0..3 {
        net.train_epoch(&train.images, &train.labels, 32, 0.1);
    }
    let test = neural::data::digits(10, 99);
    let qnet = QuantizedNetwork::from_network(&net);
    (qnet, test.images, test.labels)
}

/// The tentpole invariant: after `evaluate` returns, the merged
/// counter totals equal the decode statistics and flip count *that
/// run* returned — for every scheme and independent of how many worker
/// threads the examples were sharded over (merge is u64 addition, so
/// join order cannot change totals).
#[test]
fn counter_totals_equal_evaluate_returns() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();
    for scheme in ["NoECC", "Static16", "ABN-9"] {
        let scheme = ProtectionScheme::from_label(scheme).expect("known scheme");
        // Default config: realistic noise, so every counter class can
        // fire.
        let config = AccelConfig::new(scheme.clone());
        for threads in [1usize, 3] {
            obs::reset();
            let result =
                evaluate(&qnet, &images, &labels, &config, 42, threads).expect("evaluate");
            let label = format!("{} / {threads} threads", config.scheme.label());
            assert_eq!(obs::counter_value("ecc_clean"), result.stats.clean, "{label}");
            assert_eq!(
                obs::counter_value("ecc_corrected"),
                result.stats.corrected,
                "{label}"
            );
            assert_eq!(
                obs::counter_value("ecc_uncorrectable"),
                result.stats.uncorrectable,
                "{label}"
            );
            assert_eq!(
                obs::counter_value("ecc_miscorrected"),
                result.stats.miscorrected,
                "{label}"
            );
            assert_eq!(
                obs::counter_value("ecc_silent_a"),
                result.stats.silent_a,
                "{label}"
            );
            assert_eq!(
                obs::counter_value("ecc_retries"),
                result.stats.retries,
                "{label}"
            );
            assert_eq!(
                obs::counter_value("ecc_uncoded"),
                result.stats.uncoded,
                "{label}"
            );
            let flips = (result.flip_rate * result.samples as f64).round() as u64;
            assert_eq!(obs::counter_value("prediction_flips"), flips, "{label}");
            // Data-aware schemes exercised the A-search during
            // programming (Static16 builds its minimal-A code directly,
            // without a search).
            if matches!(scheme, ProtectionScheme::DataAware { .. }) {
                assert!(obs::counter_value("a_search_candidates") > 0, "{label}");
            }
            // Structural sanity on the series side: one programming
            // span per layer engine per shard, `samples` worth of MVMs.
            let snap = obs::snapshot();
            let mvm = snap
                .series
                .iter()
                .find(|s| s.name == "mvm")
                .expect("mvm span recorded");
            assert!(mvm.count > 0 && mvm.sum >= mvm.count * mvm.min, "{label}");
        }
    }
}

/// Batched submission preserves the counter contract: at every batch
/// size the merged counter totals still equal the returned stats, and
/// the decode *total* — one decode per nonzero (vector, bit) mask,
/// regardless of what the noise did — is batch-size independent even
/// though the individual outcome classes (clean/corrected/…) shift
/// with the reordered draws.
#[test]
fn batched_counter_totals_stay_consistent_and_invariant() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();
    let mut totals = Vec::new();
    for batch in [1usize, 4, 32] {
        obs::reset();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_batch(batch);
        let result = evaluate(&qnet, &images, &labels, &config, 42, 2).expect("evaluate");
        let label = format!("batch {batch}");
        assert_eq!(obs::counter_value("ecc_clean"), result.stats.clean, "{label}");
        assert_eq!(
            obs::counter_value("ecc_corrected"),
            result.stats.corrected,
            "{label}"
        );
        assert_eq!(
            obs::counter_value("ecc_uncorrectable"),
            result.stats.uncorrectable,
            "{label}"
        );
        assert_eq!(
            obs::counter_value("ecc_retries"),
            result.stats.retries,
            "{label}"
        );
        totals.push(result.stats.total());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "decode totals must not depend on batch size: {totals:?}"
    );
}

/// Parses one JSONL line into the stub's `Value` tree.
struct Echo(Value);

impl serde::Deserialize for Echo {
    fn from_value(value: &Value) -> Result<Echo, String> {
        Ok(Echo(value.clone()))
    }
}

/// Validates one event line against `obs::schema` (the machine-readable
/// twin of the DESIGN.md §8 table): common fields, a known type, every
/// per-type field present with the right JSON kind, and nothing extra.
/// Returns the parsed value tree.
fn validate_line(line: &str) -> Value {
    let value = serde_json::from_str::<Echo>(line)
        .unwrap_or_else(|e| panic!("unparseable event line ({e}): {line}"))
        .0;
    let fields = value
        .as_object()
        .unwrap_or_else(|| panic!("event line is not an object: {line}"));
    match value.get("v") {
        Some(&Value::Number(n)) if n == obs::schema::VERSION as f64 => {}
        other => panic!("bad schema version {other:?} in: {line}"),
    }
    match value.get("ts_ns") {
        Some(&Value::Number(n)) if n >= 0.0 && n.fract() == 0.0 => {}
        other => panic!("bad ts_ns {other:?} in: {line}"),
    }
    let ty = match value.get("type") {
        Some(Value::String(s)) => s.clone(),
        other => panic!("bad type {other:?} in: {line}"),
    };
    let spec = obs::schema::spec_for(&ty)
        .unwrap_or_else(|| panic!("event type {ty} not in obs::schema::EVENTS: {line}"));
    for field in spec.fields {
        let got = value
            .get(field.name)
            .unwrap_or_else(|| panic!("{ty} line missing field {}: {line}", field.name));
        let kind_ok = match field.kind {
            obs::schema::FieldKind::U64 => {
                matches!(got, &Value::Number(n) if n >= 0.0 && n.fract() == 0.0)
            }
            obs::schema::FieldKind::F64 => matches!(got, Value::Number(_)),
            obs::schema::FieldKind::Str => matches!(got, Value::String(_)),
            obs::schema::FieldKind::Bool => matches!(got, Value::Bool(_)),
        };
        assert!(
            kind_ok,
            "{ty} field {} has wrong kind (want {:?}): {line}",
            field.name, field.kind
        );
    }
    for (key, _) in fields {
        let known = key == "v"
            || key == "ts_ns"
            || key == "type"
            || spec.fields.iter().any(|f| f.name == key);
        assert!(known, "{ty} line has undocumented field {key}: {line}");
    }
    value
}

fn num(value: &Value, key: &str) -> f64 {
    match value.get(key) {
        Some(&Value::Number(n)) => n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// A campaign run — with an injected worker panic, so the retry path
/// fires too — must emit an event log in which every line validates
/// against the schema, the per-epoch records reproduce the campaign's
/// own `EpochRecord`s (the same numbers that checkpoints and the
/// BENCH_campaign curve are built from), and the counter totals still
/// match the summed per-epoch statistics (the discarded partial shard
/// from the retried attempt must not leak in).
#[test]
fn campaign_event_log_matches_schema_and_records() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();
    let mut base = AccelConfig::new(ProtectionScheme::data_aware(9));
    // Shard 1 panics once per evaluation (mid-shard, after partial
    // tallies and partial metric updates exist), then succeeds.
    base.shard_chaos = ShardChaos::PanicOn { shard: 1, attempts: 1 };
    let mut config = CampaignConfig::new(base, 3, 11);
    config.threads = 2;
    config.writes_per_epoch = 4e5;
    config.checkpoint_every = 0;

    obs::reset();
    obs::events::log_to_memory();
    let mut campaign = Campaign::new(config).expect("campaign");
    let state = campaign
        .run(&qnet, &images, &labels)
        .expect("campaign run")
        .clone();
    let lines = obs::events::take_memory();
    obs::events::stop_logging();

    let parsed: Vec<Value> = lines.iter().map(|l| validate_line(l)).collect();
    let epochs: Vec<&Value> = parsed
        .iter()
        .filter(|v| v.get("type") == Some(&Value::String("campaign_epoch".into())))
        .collect();
    assert_eq!(epochs.len(), state.completed.len());
    for (event, record) in epochs.iter().zip(&state.completed) {
        assert_eq!(num(event, "epoch") as u64, record.epoch);
        assert_eq!(num(event, "writes"), record.writes);
        assert_eq!(num(event, "fault_rate"), record.fault_rate);
        assert_eq!(num(event, "misclassification"), record.misclassification);
        assert_eq!(num(event, "flip_rate"), record.flip_rate);
        assert_eq!(num(event, "samples") as u64, record.samples);
        assert_eq!(num(event, "corrected") as u64, record.corrected);
        assert_eq!(num(event, "miscorrected") as u64, record.miscorrected);
        match event.get("scheme") {
            Some(Value::String(s)) => assert_eq!(s, &state.scheme),
            other => panic!("bad scheme field: {other:?}"),
        }
        // No checkpoint path configured: write latency must be 0.
        assert_eq!(num(event, "checkpoint_ns"), 0.0);
    }
    // The injected panic produced (at least) one retry per epoch, each
    // a schema-valid line, and shard completions were logged.
    let retries = parsed
        .iter()
        .filter(|v| v.get("type") == Some(&Value::String("shard_retry".into())))
        .count();
    assert_eq!(retries, state.completed.len());
    assert_eq!(obs::counter_value("shard_retries") as usize, retries);
    assert!(parsed
        .iter()
        .any(|v| v.get("type") == Some(&Value::String("shard_done".into()))));

    // Counter totals across the whole campaign equal the summed
    // per-epoch returns: the retried attempts' partial counters were
    // discarded, not merged.
    let sum = |f: fn(&accel::campaign::EpochRecord) -> u64| -> u64 {
        state.completed.iter().map(f).sum()
    };
    assert_eq!(obs::counter_value("ecc_clean"), sum(|r| r.clean));
    assert_eq!(obs::counter_value("ecc_corrected"), sum(|r| r.corrected));
    assert_eq!(
        obs::counter_value("ecc_miscorrected"),
        sum(|r| r.miscorrected)
    );
    assert_eq!(obs::counter_value("ecc_retries"), sum(|r| r.retries));
}
