//! The chaos soak: a full lifetime campaign with deterministic faults
//! injected at **every** seam the durability layer hardens — periodic
//! checkpoint writes (errors, torn writes, silent bit flips),
//! checkpoint reads during resume (bit flips), the final results
//! write, and worker shards (seeded mid-shard panics) — interrupted
//! mid-flight ("kill") and resumed.
//!
//! The headline property of the whole subsystem: the recovered
//! campaign's final results are **byte-identical** to a fault-free
//! uninterrupted run, and the same `(seed, chaos_seed)` pair replays
//! the same recovery bit-for-bit.
//!
//! The chaos seed is pinned: faults are a pure function of
//! `(chaos_seed, seam, index)`, so this test exercises one fixed,
//! locally-verified fault script rather than a flaky random one. A
//! failing soak is therefore a one-line repro:
//! `reram-ecc campaign --seed 41 --chaos-seed 7 ...`.

use std::path::{Path, PathBuf};

use accel::campaign::{Campaign, CampaignConfig};
use accel::{AccelConfig, ProtectionScheme};
use chaos::ChaosSchedule;
use neural::{QuantizedNetwork, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The pinned chaos seed. Verified to drive the standard fault rates
/// through every recovery path this test asserts on; change it only
/// together with the assertions below.
const CHAOS_SEED: u64 = 7;

/// The obs event sink is process-global, and every test here emits
/// into it (under `--features obs`): serialize them so the fault
/// transcript never interleaves with a neighboring lifecycle.
static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// A tiny trained network and test set (the campaign unit tests'
/// recipe: small test split, because the soak evaluates it many
/// times). Trained once per process — every test soaks the same model.
fn tiny_problem() -> (&'static QuantizedNetwork, &'static Tensor, &'static [usize]) {
    static PROBLEM: std::sync::OnceLock<(QuantizedNetwork, Tensor, Vec<usize>)> =
        std::sync::OnceLock::new();
    let (qnet, images, labels) = PROBLEM.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = neural::models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..3 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(8, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    });
    (qnet, images, labels)
}

/// The campaign under soak: single-threaded (one shard per epoch), a
/// steep wear schedule, checkpoints every epoch, and enough seed-stable
/// shard retries that seeded panics always converge.
fn soak_config() -> CampaignConfig {
    let mut base = AccelConfig::new(ProtectionScheme::None);
    base.shard_retries = 4;
    let mut config = CampaignConfig::new(base, 4, 41);
    config.threads = 1;
    config.writes_per_epoch = 2e5;
    config
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-soak-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// One full chaotic lifecycle: fresh campaign under injection, killed
/// after two of four epochs, resumed (read seam under injection too),
/// run to completion. Returns the final results bytes.
fn chaotic_lifecycle(
    dir: &Path,
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
) -> String {
    let schedule = ChaosSchedule::standard(CHAOS_SEED);
    let path = dir.join("campaign.json");

    let mut first = Campaign::new(soak_config())
        .expect("campaign")
        .with_checkpoint(path.clone())
        .with_chaos(schedule);
    first
        .run_epochs(qnet, images, labels, 2)
        .expect("pre-kill epochs");
    assert_eq!(first.completed_epochs(), 2);
    // "Kill": the process dies here; only what the checkpoint slots
    // hold survives.
    drop(first);

    let mut resumed = Campaign::resume_with_chaos(soak_config(), &path, Some(schedule))
        .expect("resume under chaos");
    assert!(
        resumed.completed_epochs() <= 2,
        "resume cannot know epochs the checkpoint never recorded"
    );
    resumed.run(qnet, images, labels).expect("post-kill epochs");
    std::fs::read_to_string(&path).expect("final results")
}

#[test]
fn soaked_campaign_recovers_byte_identical_to_clean_run() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();

    // Fault-free, uninterrupted, checkpoint-free reference.
    let mut reference = Campaign::new(soak_config()).expect("campaign");
    reference.run(&qnet, &images, &labels).expect("clean run");
    let reference_json = reference.state().to_json().expect("json");

    // The same campaign dragged through the full fault gauntlet.
    let dir = scratch_dir("lifecycle");
    let soaked = chaotic_lifecycle(&dir, &qnet, &images, &labels);
    assert_eq!(
        soaked, reference_json,
        "chaos + kill + resume must not change a single byte of the results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_replays_bit_for_bit() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();
    let dir_a = scratch_dir("replay-a");
    let dir_b = scratch_dir("replay-b");
    let a = chaotic_lifecycle(&dir_a, &qnet, &images, &labels);
    let b = chaotic_lifecycle(&dir_b, &qnet, &images, &labels);
    assert_eq!(
        a, b,
        "same (seed, chaos_seed) must replay the identical recovery"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The event log is the soak's flight recorder: under `--features obs`
/// the chaos run must announce its injected faults (`chaos_fault`) and
/// the replayed lifecycle must produce the identical fault transcript
/// (timestamps excluded — they are the one nondeterministic field).
#[cfg(feature = "obs")]
#[test]
fn soak_fault_transcript_is_deterministic() {
    let _g = guard();
    let (qnet, images, labels) = tiny_problem();

    let transcript = |dir: &Path| -> Vec<String> {
        obs::events::log_to_memory();
        let _ = chaotic_lifecycle(dir, &qnet, &images, &labels);
        let lines = obs::events::take_memory();
        obs::events::stop_logging();
        // `checkpoint_fallback` events carry the artifact's absolute
        // path; normalize the per-lifecycle scratch dir away so the
        // two replays compare on fault content alone.
        let dir_str = dir.display().to_string();
        lines
            .into_iter()
            .filter(|l| {
                l.contains("\"type\":\"chaos_fault\"")
                    || l.contains("\"type\":\"checkpoint_fallback\"")
                    || l.contains("\"type\":\"checkpoint_write_failed\"")
            })
            .map(|l| strip_ts(l).replace(&dir_str, "<dir>"))
            .collect()
    };

    let dir_a = scratch_dir("transcript-a");
    let dir_b = scratch_dir("transcript-b");
    let a = transcript(&dir_a);
    let b = transcript(&dir_b);
    assert!(
        !a.is_empty(),
        "the pinned chaos seed must actually inject faults"
    );
    assert!(
        a.iter().any(|l| l.contains("\"seam\":\"checkpoint_write\"")),
        "transcript: {a:#?}"
    );
    assert_eq!(a, b, "fault transcript must replay bit-for-bit");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Drops the `"ts_ns":<n>,` field from an event line; everything else
/// in the transcript is deterministic.
#[cfg(feature = "obs")]
fn strip_ts(line: String) -> String {
    match (line.find("\"ts_ns\":"), line.find("\"type\":")) {
        (Some(start), Some(end)) if start < end => {
            format!("{}{}", &line[..start], &line[end..])
        }
        _ => line,
    }
}
