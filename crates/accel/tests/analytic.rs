//! Analytic-vs-Monte-Carlo cross-validation contract (DESIGN.md §11).
//!
//! - The analytic fast path agrees with the Monte-Carlo harness within
//!   a *pinned* tolerance on a seeded grid cell per scheme family and
//!   fault regime.  `BENCH_analytic.json` records the measured
//!   agreement on the full Fig 10/11 smoke grid; this test pins the
//!   contract the recorded numbers must keep satisfying.
//! - Averaging Monte-Carlo runs over more seeds converges toward the
//!   analytic expectation (the analytic result is the noise-marginal
//!   the sampler estimates).
//! - `ErrorModel::Auto` equals the analytic path exactly when the
//!   configuration is inside the envelope, and is *byte-identical* to
//!   the seeded Monte-Carlo path when it is not.
//! - Flip rate is monotone in the stuck-at fault rate (property test).

use accel::analytic::{self, ErrorModel};
use accel::{AccelConfig, AccelError, ProtectionScheme};
use neural::{Dense, Network, QuantizedNetwork, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Agreement tolerance the cross-validation must keep. The smoke grid
/// recorded in `BENCH_analytic.json` currently agrees to 0.000; the pin
/// leaves headroom for one 24-sample Monte-Carlo flip (1/24 ≈ 0.042).
const TOLERANCE: f64 = 0.05;

/// A seeded 200→64 classification problem, large enough to exercise
/// multi-chunk mapping (200 inputs > 128 columns) and partial tail
/// stacks (64 outputs across 8-operand groups).
fn problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let net = Network::new(vec![Box::new(Dense::new(200, 64, &mut rng))]);
    let qnet = QuantizedNetwork::from_network(&net);
    let n = 24;
    let images = Tensor::from_vec(
        vec![n, 200],
        (0..n * 200).map(|i| ((i * 37) % 101) as f32 / 101.0).collect(),
    );
    let labels: Vec<usize> = (0..n).map(|i| i % 64).collect();
    (qnet, images, labels)
}

fn schemes() -> [ProtectionScheme; 3] {
    [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ]
}

#[test]
fn analytic_agrees_with_mc_within_pinned_tolerance() {
    let (qnet, images, labels) = problem();
    for scheme in schemes() {
        for fault in [0.0, 1e-3] {
            let config = AccelConfig::new(scheme.clone()).with_fault_rate(fault);
            let mc = accel::sim::evaluate(&qnet, &images, &labels, &config, 7, 1)
                .expect("mc evaluation");
            let an = analytic::predict(&qnet, &images, &labels, &config).expect("analytic");
            let d_mis = (mc.misclassification - an.misclassification).abs();
            let d_flip = (mc.flip_rate - an.flip_rate).abs();
            assert!(
                d_mis <= TOLERANCE && d_flip <= TOLERANCE,
                "{} fault {fault:e}: |Δmis| {d_mis:.4}, |Δflip| {d_flip:.4} \
                 exceed pinned tolerance {TOLERANCE}",
                config.scheme.label(),
            );
        }
    }
}

#[test]
fn mc_seed_average_converges_toward_analytic() {
    let (qnet, images, labels) = problem();
    // RTN + faults on: the Monte-Carlo estimate genuinely fluctuates
    // per seed, so averaging over more seeds must tighten it.
    let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(1e-3);
    let an = analytic::predict(&qnet, &images, &labels, &config).expect("analytic");
    let mean_flip = |seeds: std::ops::Range<u64>| -> f64 {
        let n = (seeds.end - seeds.start) as f64;
        seeds
            .map(|s| {
                accel::sim::evaluate(&qnet, &images, &labels, &config, s, 1)
                    .expect("mc")
                    .flip_rate
            })
            .sum::<f64>()
            / n
    };
    let coarse = (mean_flip(0..2) - an.flip_rate).abs();
    let fine = (mean_flip(0..12) - an.flip_rate).abs();
    assert!(
        fine <= coarse + 0.01,
        "12-seed MC average (|Δ| {fine:.4}) should sit at least as close to the \
         analytic expectation as the 2-seed average (|Δ| {coarse:.4})"
    );
}

#[test]
fn auto_matches_analytic_when_supported() {
    let (qnet, images, labels) = problem();
    let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(1e-3);
    assert!(analytic::supports(&config));
    let auto = accel::sim::evaluate_with_model(
        &qnet, &images, &labels, &config, 7, 1, ErrorModel::Auto,
    )
    .expect("auto");
    let an = analytic::predict(&qnet, &images, &labels, &config).expect("analytic");
    assert_eq!(auto, an);
}

#[test]
fn auto_falls_back_to_mc_byte_identically() {
    let (qnet, images, labels) = problem();
    // Retries take the configuration outside the analytic envelope.
    let mut config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(1e-3);
    config.max_retries = 1;
    assert!(!analytic::supports(&config));
    let auto = accel::sim::evaluate_with_model(
        &qnet, &images, &labels, &config, 7, 1, ErrorModel::Auto,
    )
    .expect("auto");
    let mc = accel::sim::evaluate(&qnet, &images, &labels, &config, 7, 1).expect("mc");
    // Full structural identity, not approximate agreement: `Auto` must
    // leave the recorded Monte-Carlo series untouched when it falls
    // back, down to the decode statistics.
    assert_eq!(auto, mc);
}

#[test]
fn forced_analytic_outside_envelope_is_refused() {
    let (qnet, images, labels) = problem();
    let mut config = AccelConfig::new(ProtectionScheme::data_aware(9));
    config.max_retries = 1;
    assert!(matches!(
        accel::sim::evaluate_with_model(
            &qnet, &images, &labels, &config, 7, 1, ErrorModel::Analytic,
        ),
        Err(AccelError::InvalidConfig(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raising the stuck-at fault rate never lowers the predicted flip
    /// rate (more broken cells can only damage more predictions).
    #[test]
    fn flip_rate_is_monotone_in_fault_rate(
        lo in 0.0f64..5e-3,
        scale in 1.0f64..20.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = Network::new(vec![Box::new(Dense::new(24, 8, &mut rng))]);
        let qnet = QuantizedNetwork::from_network(&net);
        let images =
            Tensor::from_vec(vec![4, 24], (0..96).map(|i| (i % 9) as f32 / 9.0).collect());
        let labels = vec![0usize, 1, 2, 3];
        let hi = lo * scale;
        let flip = |fault: f64| {
            let config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(fault);
            analytic::predict(&qnet, &images, &labels, &config)
                .expect("predict")
                .flip_rate
        };
        prop_assert!(flip(hi) >= flip(lo) - 1e-12);
    }
}
