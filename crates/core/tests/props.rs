//! Property-based tests for the arithmetic-code invariants.

use ancode::{
    data_aware::{build_table, DataAwareConfig},
    AbnCode, AnCode, CorrectionPolicy, DecodeStatus, GroupLayout, OperandGroup, RowError,
    RowErrorModel, Syndrome, SyndromeFamily,
};
use proptest::prelude::*;
use wideint::{I256, U256};

/// Odd A values ≥ 3 that keep tables small enough to test quickly.
fn small_a() -> impl Strategy<Value = u64> {
    (1u64..200).prop_map(|k| 2 * k + 1)
}

proptest! {
    #[test]
    fn an_addition_conserved(a in small_a(), x in any::<u32>(), y in any::<u32>()) {
        // f(x) ⊕ f(y) = f(x ⊕ y): the defining arithmetic-code property.
        let code = AnCode::new(a).unwrap();
        let fx = code.encode(U256::from(x)).unwrap();
        let fy = code.encode(U256::from(y)).unwrap();
        let fxy = code.encode(U256::from(x as u64 + y as u64)).unwrap();
        prop_assert_eq!(fx + fy, fxy);
        prop_assert!(code.is_codeword(fx + fy));
    }

    #[test]
    fn an_nonzero_syndrome_detected(a in small_a(), x in any::<u32>(), e in 1u64..1000) {
        // Any additive error not a multiple of A leaves a nonzero residue.
        let code = AnCode::new(a).unwrap();
        prop_assume!(e % a != 0);
        let observed = code.encode(U256::from(x)).unwrap() + U256::from(e);
        prop_assert!(!code.is_codeword(observed));
    }

    #[test]
    fn classic_corrects_its_family(x in 0u64..(1 << 16), bit in 0u32..16, sign in any::<bool>()) {
        // A = 47·3 protects 16-bit operands; all low single-bit errors in
        // the table's prefix are corrected exactly.
        let code = AbnCode::classic(47, 3, 16).unwrap();
        let clean = code.encode(U256::from(x)).unwrap();
        let delta = if sign { 1i8 } else { -1 };
        let observed = I256::from(clean) + Syndrome::single(bit, delta).value();
        let out = code.decode(observed, CorrectionPolicy::Revert);
        prop_assert!(out.status.was_corrected(), "status {:?}", out.status);
        prop_assert_eq!(out.value.to_i128(), Some(x as i128));
    }

    #[test]
    fn decode_clean_is_identity(a in small_a(), x in any::<u32>()) {
        let code = AbnCode::classic(a, 3, 32);
        prop_assume!(code.is_ok());
        let code = code.unwrap();
        let clean = code.encode(U256::from(x)).unwrap();
        let out = code.decode(clean.into(), CorrectionPolicy::Revert);
        prop_assert_eq!(out.status, DecodeStatus::Clean);
        prop_assert_eq!(out.value.to_i128(), Some(x as i128));
    }

    #[test]
    fn residues_unique_in_any_valid_assignment(width in 1u32..12) {
        let a = ancode::min_single_error_a(width);
        let code = AnCode::new(a).unwrap();
        let assignment = code
            .assign_residues(SyndromeFamily::SingleBit { width })
            .unwrap();
        let mut residues: Vec<u64> = assignment.iter().map(|(r, _)| *r).collect();
        let n = residues.len();
        residues.sort_unstable();
        residues.dedup();
        prop_assert_eq!(residues.len(), n);
        prop_assert!(residues.iter().all(|&r| r != 0 && r < a));
    }

    #[test]
    fn group_roundtrip(ops in proptest::collection::vec(0u64..(1 << 16), 8)) {
        let group = OperandGroup::new(GroupLayout::PAPER_128);
        let packed = group.pack(&ops).unwrap();
        prop_assert_eq!(group.unpack(packed), ops);
    }

    #[test]
    fn group_split_signed_reconstructs(e in any::<i64>()) {
        let group = OperandGroup::new(GroupLayout::new(16, 8).unwrap());
        let digits = group.split_signed(I256::from(e));
        let recon: i128 = digits
            .iter()
            .enumerate()
            .map(|(i, &d)| d as i128 * (1i128 << (16 * i)))
            .sum();
        prop_assert_eq!(recon, e as i128);
    }

    #[test]
    fn group_encode_decode_through_code(ops in proptest::collection::vec(0u64..(1 << 16), 8)) {
        // Full pipeline: pack → encode → (no error) → decode → unpack.
        let group = OperandGroup::new(GroupLayout::PAPER_128);
        let code = AbnCode::classic(79, 3, 128).unwrap();
        let packed = group.pack(&ops).unwrap();
        let coded = code.encode(packed).unwrap();
        let out = code.decode(coded.into(), CorrectionPolicy::Revert);
        prop_assert_eq!(out.status, DecodeStatus::Clean);
        prop_assert!(!out.value.is_negative());
        prop_assert_eq!(group.unpack(out.value.magnitude()), ops);
    }

    #[test]
    fn data_aware_table_prefers_high_probability(
        p_lo in 0.0001f64..0.01,
        p_hi in 0.05f64..0.3,
    ) {
        // With a tiny A (few slots), the high-probability high-weight row
        // always wins a slot over the low-probability low row.
        let model = RowErrorModel::new(
            vec![
                RowError::symmetric(0, p_lo),
                RowError::symmetric(6, p_hi),
            ],
            8,
        );
        let table = build_table(5, &model, &DataAwareConfig::default()).unwrap();
        prop_assert!(table
            .iter()
            .any(|(_, e)| e.syndrome.msb() == 6));
    }

    #[test]
    fn data_aware_decode_fixes_covered_errors(x in 0u64..(1 << 12)) {
        let model = RowErrorModel::new(
            (0..8).map(|i| RowError::symmetric(i * 2, 0.02)).collect(),
            16,
        );
        let code = ancode::data_aware::build_code(
            337,
            3,
            &model,
            16,
            &DataAwareConfig::default(),
        )
        .unwrap();
        let clean = code.encode(U256::from(x)).unwrap();
        // Every single-row event is covered by A = 337's ample table.
        for row in model.rows() {
            let observed = I256::from(clean) + Syndrome::single(row.lsb_bit, 1).value();
            let out = code.decode(observed, CorrectionPolicy::Revert);
            prop_assert!(out.status.was_corrected());
            prop_assert_eq!(out.value.to_i128(), Some(x as i128));
        }
    }
}
