//! Multiresidue detection: `A·B₁·B₂…` codes.
//!
//! §V-B3 of the paper introduces ABN codes as "a new family of codes
//! similar to the bi- and multiresidue codes proposed by Rao", and §VI
//! notes that single `B` values beyond 3 stop paying for themselves.
//! This module implements the natural generalization the references
//! point to: detection with *several* small pairwise-coprime primes.
//! Each extra residue multiplies the miscorrection-escape probability by
//! roughly `1/Bᵢ` (an alias slips through only if the residual error is
//! divisible by every `Bᵢ`), at the cost of `log2(Bᵢ)` extra bits per
//! operand — letting reliability be dialed against storage overhead.

use wideint::{I256, U256};

use crate::{CodeError, CorrectionPolicy, CorrectionTable, DecodeOutcome, DecodeStatus};

/// An `A·B₁·…·Bₖ` multiresidue arithmetic code.
///
/// Correction works exactly as in [`AbnCode`](crate::AbnCode); detection
/// checks divisibility by every `Bᵢ` after the correction, catching
/// aliased syndromes that any single residue would miss.
///
/// # Examples
///
/// ```
/// use ancode::multiresidue::MultiResidueCode;
/// use ancode::{AnCode, CorrectionPolicy, CorrectionTable};
/// use wideint::U256;
///
/// let an = AnCode::new(19)?;
/// let table = CorrectionTable::for_single_bit_prefix(&an, 9);
/// let code = MultiResidueCode::new(19, &[3, 5], table, 5)?;
/// let clean = code.encode(U256::from(26u64))?;
/// let out = code.decode(clean.into(), CorrectionPolicy::Revert);
/// assert_eq!(out.value.to_i128(), Some(26));
/// # Ok::<(), ancode::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiResidueCode {
    a: u64,
    bs: Vec<u64>,
    table: CorrectionTable,
    data_bits: u32,
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl MultiResidueCode {
    /// Creates a multiresidue code with correction modulus `a` and
    /// detection primes `bs`.
    ///
    /// # Errors
    ///
    /// - [`CodeError::InvalidA`] if `a` is invalid or differs from the
    ///   table's modulus.
    /// - [`CodeError::InvalidB`] if `bs` is empty, any `Bᵢ` is not
    ///   prime, or the moduli are not pairwise coprime (including with
    ///   `a`).
    pub fn new(
        a: u64,
        bs: &[u64],
        table: CorrectionTable,
        data_bits: u32,
    ) -> Result<MultiResidueCode, CodeError> {
        crate::AnCode::new(a)?;
        if table.a() != a {
            return Err(CodeError::InvalidA(table.a()));
        }
        if bs.is_empty() {
            return Err(CodeError::InvalidB { a, b: 0 });
        }
        for (i, &b) in bs.iter().enumerate() {
            if !is_prime(b) || gcd(a, b) != 1 {
                return Err(CodeError::InvalidB { a, b });
            }
            for &other in &bs[..i] {
                if gcd(b, other) != 1 {
                    return Err(CodeError::InvalidB { a, b });
                }
            }
        }
        Ok(MultiResidueCode {
            a,
            bs: bs.to_vec(),
            table,
            data_bits,
        })
    }

    /// The correction modulus `A`.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The detection primes.
    pub fn bs(&self) -> &[u64] {
        &self.bs
    }

    /// The combined multiplier `A·ΠBᵢ`.
    pub fn multiplier(&self) -> u64 {
        self.bs.iter().product::<u64>() * self.a
    }

    /// Total check bits: `ceil(log2(A·ΠBᵢ))`.
    pub fn check_bits(&self) -> u32 {
        64 - (self.multiplier() - 1).leading_zeros()
    }

    /// The probability that a *random* residual error escapes all
    /// detection residues: `Π 1/Bᵢ` — the figure of merit extra `B`s
    /// buy.
    pub fn escape_probability(&self) -> f64 {
        self.bs.iter().map(|&b| 1.0 / b as f64).product()
    }

    /// Encodes `x` as `A·ΠBᵢ·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::OperandTooWide`] or [`CodeError::Overflow`]
    /// under the same conditions as [`AbnCode::encode`](crate::AbnCode::encode).
    pub fn encode(&self, x: U256) -> Result<U256, CodeError> {
        if x.bits() > self.data_bits {
            return Err(CodeError::OperandTooWide {
                required: x.bits(),
                available: self.data_bits,
            });
        }
        x.checked_mul_u64(self.multiplier())
            .ok_or(CodeError::Overflow)
    }

    /// Decodes with correction by `A` and detection by every `Bᵢ`.
    pub fn decode(&self, observed: I256, policy: CorrectionPolicy) -> DecodeOutcome {
        let residue = observed.rem_euclid_u64(self.a).expect("A is nonzero");

        let validate = |q: I256| -> Option<I256> {
            let mut v = q;
            for &b in &self.bs {
                v = v.div_exact_u64(b)?;
            }
            Some(v)
        };

        if residue == 0 {
            let q = observed.div_exact_u64(self.a).expect("residue checked");
            return match validate(q) {
                Some(value) => DecodeOutcome {
                    value,
                    status: DecodeStatus::Clean,
                },
                None => DecodeOutcome {
                    value: self.best_effort(observed),
                    status: DecodeStatus::SilentAError,
                },
            };
        }

        match self.table.lookup(residue) {
            Some(entry) => {
                let corrected = observed - entry.syndrome.value();
                let q = corrected
                    .div_exact_u64(self.a)
                    .expect("syndrome residue matches");
                match validate(q) {
                    Some(value) => DecodeOutcome {
                        value,
                        status: DecodeStatus::Corrected(entry.syndrome.clone()),
                    },
                    None => {
                        let value = match policy {
                            CorrectionPolicy::KeepCorrected => self.best_effort(corrected),
                            CorrectionPolicy::Revert => self.best_effort(observed),
                        };
                        DecodeOutcome {
                            value,
                            status: DecodeStatus::MiscorrectionDetected {
                                attempted: entry.syndrome.clone(),
                            },
                        }
                    }
                }
            }
            None => DecodeOutcome {
                value: self.best_effort(observed),
                status: DecodeStatus::Uncorrectable,
            },
        }
    }

    fn best_effort(&self, n: I256) -> I256 {
        n.div_round_u64(self.multiplier())
            .expect("multiplier is nonzero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnCode, Syndrome};

    fn code(bs: &[u64]) -> MultiResidueCode {
        let an = AnCode::new(19).unwrap();
        let table = CorrectionTable::for_single_bit_prefix(&an, 9);
        MultiResidueCode::new(19, bs, table, 5).unwrap()
    }

    #[test]
    fn construction_validates_moduli() {
        let an = AnCode::new(19).unwrap();
        let table = || CorrectionTable::for_single_bit_prefix(&an, 9);
        assert!(MultiResidueCode::new(19, &[], table(), 5).is_err());
        assert!(MultiResidueCode::new(19, &[4], table(), 5).is_err()); // not prime
        assert!(MultiResidueCode::new(19, &[3, 3], table(), 5).is_err()); // not coprime
        assert!(MultiResidueCode::new(19, &[19], table(), 5).is_err()); // shares A
        assert!(MultiResidueCode::new(19, &[3, 5, 7], table(), 5).is_ok());
    }

    #[test]
    fn clean_roundtrip_biresidue() {
        let code = code(&[3, 5]);
        assert_eq!(code.multiplier(), 19 * 15);
        for x in 0u64..32 {
            let e = code.encode(U256::from(x)).unwrap();
            let out = code.decode(e.into(), CorrectionPolicy::Revert);
            assert_eq!(out.status, DecodeStatus::Clean);
            assert_eq!(out.value.to_i128(), Some(x as i128));
        }
    }

    #[test]
    fn corrects_single_bit_errors() {
        let code = code(&[3, 5]);
        let clean = code.encode(U256::from(20u64)).unwrap();
        for bit in 0..9 {
            let observed = I256::from(clean) + Syndrome::single(bit, 1).value();
            let out = code.decode(observed, CorrectionPolicy::Revert);
            assert!(out.status.was_corrected(), "bit {bit}");
            assert_eq!(out.value.to_i128(), Some(20));
        }
    }

    #[test]
    fn more_residues_catch_more_aliases() {
        // Count syndromes (over a grid of injected errors) that a
        // single-residue code silently miscorrects but the biresidue
        // code flags.
        let b1 = code(&[3]);
        let b2 = code(&[3, 5]);
        let clean1 = b1.encode(U256::from(20u64)).unwrap();
        let clean2 = b2.encode(U256::from(20u64)).unwrap();

        let mut silent1 = 0;
        let mut silent2 = 0;
        for e in 1..4000i128 {
            let o1 = b1.decode(I256::from(clean1) + I256::from_i128(e), CorrectionPolicy::Revert);
            let o2 = b2.decode(I256::from(clean2) + I256::from_i128(e), CorrectionPolicy::Revert);
            if o1.status.is_trusted() && o1.value.to_i128() != Some(20) {
                silent1 += 1;
            }
            if o2.status.is_trusted() && o2.value.to_i128() != Some(20) {
                silent2 += 1;
            }
        }
        assert!(
            silent2 * 2 < silent1,
            "biresidue should at least halve silent escapes: {silent1} vs {silent2}"
        );
    }

    #[test]
    fn escape_probability_is_product() {
        assert!((code(&[3, 5]).escape_probability() - 1.0 / 15.0).abs() < 1e-12);
        assert!((code(&[3]).escape_probability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn check_bits_grow_with_residues() {
        assert!(code(&[3, 5]).check_bits() > code(&[3]).check_bits());
        assert_eq!(code(&[3, 5]).check_bits(), 9); // 285 ≤ 512
    }

    #[test]
    fn negative_values_decode() {
        let code = code(&[3, 5]);
        let out = code.decode(I256::from_i128(-285), CorrectionPolicy::Revert);
        assert_eq!(out.status, DecodeStatus::Clean);
        assert_eq!(out.value.to_i128(), Some(-1));
    }
}
