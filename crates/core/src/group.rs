//! Multi-operand coded groups (§V-B2, Equation 2 of the paper).
//!
//! The number of check bits a correcting AN code needs grows only
//! logarithmically with the operand size, so wide operands amortize the
//! overhead: the paper concatenates eight 16-bit operands into one
//! 128-bit block and protects the whole block with a single 7–10 bit
//! code. This module implements the packing
//! (`AN' = A · Σ 2^{i·b} · N_i`), the inverse split, and a signed
//! balanced-digit split used to attribute a *residual* error to the lanes
//! it lands in.

use wideint::{I256, U256};

use crate::CodeError;

/// The geometry of a coded operand group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupLayout {
    operand_bits: u32,
    operands: usize,
}

impl GroupLayout {
    /// The paper's default: eight 16-bit operands per 128-bit group.
    pub const PAPER_128: GroupLayout = GroupLayout {
        operand_bits: 16,
        operands: 8,
    };

    /// Creates a layout of `operands` lanes of `operand_bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidLayout`] if either parameter is zero
    /// or the packed group exceeds 200 bits (leaving headroom for the
    /// code multiplier within 256 bits).
    pub fn new(operand_bits: u32, operands: usize) -> Result<GroupLayout, CodeError> {
        if operand_bits == 0 || operands == 0 {
            return Err(CodeError::InvalidLayout(
                "operand_bits and operands must be nonzero".into(),
            ));
        }
        let total = operand_bits as u64 * operands as u64;
        if total > 200 {
            return Err(CodeError::InvalidLayout(format!(
                "group of {total} bits exceeds the 200-bit limit"
            )));
        }
        Ok(GroupLayout {
            operand_bits,
            operands,
        })
    }

    /// Bits per lane (one underlying operand).
    pub fn operand_bits(&self) -> u32 {
        self.operand_bits
    }

    /// Number of lanes.
    pub fn operands(&self) -> usize {
        self.operands
    }

    /// Total packed width in bits.
    pub fn data_bits(&self) -> u32 {
        self.operand_bits * self.operands as u32
    }
}

/// Packs and unpacks operand groups for a fixed [`GroupLayout`].
///
/// # Examples
///
/// ```
/// use ancode::{GroupLayout, OperandGroup};
///
/// let group = OperandGroup::new(GroupLayout::new(16, 4)?);
/// let packed = group.pack(&[10, 20, 30, 40])?;
/// assert_eq!(group.unpack(packed), vec![10, 20, 30, 40]);
/// # Ok::<(), ancode::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandGroup {
    layout: GroupLayout,
}

impl OperandGroup {
    /// Creates a group packer for `layout`.
    pub fn new(layout: GroupLayout) -> OperandGroup {
        OperandGroup { layout }
    }

    /// The layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }

    /// Packs operands into a single block: `Σ 2^{i·b} · ops[i]`.
    ///
    /// Operand `i` occupies bits `[i·b, (i+1)·b)`; lane 0 is least
    /// significant.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::OperandTooWide`] if any operand needs more
    /// than `operand_bits` bits, or [`CodeError::InvalidLayout`] if the
    /// slice length differs from the layout's operand count.
    pub fn pack(&self, ops: &[u64]) -> Result<U256, CodeError> {
        if ops.len() != self.layout.operands {
            return Err(CodeError::InvalidLayout(format!(
                "expected {} operands, got {}",
                self.layout.operands,
                ops.len()
            )));
        }
        let b = self.layout.operand_bits;
        let mut block = U256::ZERO;
        for (i, &op) in ops.iter().enumerate() {
            let required = 64 - op.leading_zeros();
            if required > b {
                return Err(CodeError::OperandTooWide {
                    required,
                    available: b,
                });
            }
            block = block | (U256::from(op) << (i as u32 * b));
        }
        Ok(block)
    }

    /// Splits a packed block back into its lanes.
    ///
    /// This is exact when each lane value fits its width — true for
    /// stored weights by construction. For *accumulated* outputs whose
    /// lane sums may have produced carries, see
    /// [`split_signed`](OperandGroup::split_signed).
    pub fn unpack(&self, block: U256) -> Vec<u64> {
        let b = self.layout.operand_bits;
        (0..self.layout.operands)
            .map(|i| block.extract_bits(i as u32 * b, b.min(64)))
            .collect()
    }

    /// Decomposes a signed residual error into balanced per-lane digits.
    ///
    /// After decoding, any *uncorrected* residual error
    /// `E = observed − corrected_truth` is an integer whose bits fall
    /// into specific lanes. This method expresses `E` as
    /// `Σ 2^{i·b} · e_i` with each digit `e_i ∈ [−2^{b−1}, 2^{b−1})`
    /// (balanced base-`2^b` representation), attributing the error
    /// locally to the lanes it perturbs. Any residue beyond the top lane
    /// is folded into the last digit.
    ///
    /// # Examples
    ///
    /// ```
    /// use ancode::{GroupLayout, OperandGroup};
    /// use wideint::I256;
    ///
    /// let group = OperandGroup::new(GroupLayout::new(8, 4)?);
    /// // An error of −3·2^8 lands entirely in lane 1.
    /// let digits = group.split_signed(I256::from_i128(-768));
    /// assert_eq!(digits, vec![0, -3, 0, 0]);
    /// # Ok::<(), ancode::CodeError>(())
    /// ```
    pub fn split_signed(&self, error: I256) -> Vec<i64> {
        let mut digits = Vec::new();
        self.split_signed_into(error, &mut digits);
        digits
    }

    /// Like [`OperandGroup::split_signed`], but writes the digits into a
    /// caller-provided buffer instead of allocating a fresh `Vec`.
    ///
    /// `out` is cleared and resized to the lane count; a buffer whose
    /// capacity already covers the layout is reused without allocating,
    /// which is what the accelerator's per-stack loop relies on.
    pub fn split_signed_into(&self, error: I256, out: &mut Vec<i64>) {
        let b = self.layout.operand_bits.min(62);
        let base = 1i128 << b;
        let half = base / 2;
        out.clear();
        out.resize(self.layout.operands, 0i64);
        let digits = out;
        let negative = error.is_negative();
        let mut mag = error.magnitude();
        let mut carry = 0i128;
        for (i, digit) in digits.iter_mut().enumerate() {
            let (q, r) = mag.div_rem_u64(base as u64).expect("base is nonzero");
            mag = q;
            let mut d = r as i128 * if negative { -1 } else { 1 } + carry;
            carry = 0;
            if i + 1 < self.layout.operands {
                if d >= half {
                    d -= base;
                    carry = 1;
                } else if d < -half {
                    d += base;
                    carry = -1;
                }
            }
            *digit = d as i64;
        }
        // Fold anything left over into the top lane (saturating, since a
        // residual this large means the computation is unusable anyway).
        if !mag.is_zero() || carry != 0 {
            let extra = mag
                .to_u128()
                .map(|m| m as i128 * if negative { -1 } else { 1 } * base + carry * base)
                .unwrap_or(if negative { i128::MIN / 2 } else { i128::MAX / 2 });
            let top = digits.last_mut().expect("layout has at least one lane");
            *top = top.saturating_add(extra.clamp(i64::MIN as i128, i64::MAX as i128) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_is_128_bits() {
        assert_eq!(GroupLayout::PAPER_128.data_bits(), 128);
        assert_eq!(GroupLayout::PAPER_128.operands(), 8);
        assert_eq!(GroupLayout::PAPER_128.operand_bits(), 16);
    }

    #[test]
    fn layout_validation() {
        assert!(GroupLayout::new(0, 4).is_err());
        assert!(GroupLayout::new(16, 0).is_err());
        assert!(GroupLayout::new(32, 8).is_err()); // 256 > 200
        assert!(GroupLayout::new(16, 8).is_ok());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let group = OperandGroup::new(GroupLayout::PAPER_128);
        let ops = [1u64, 65535, 0, 42, 9999, 12345, 7, 32768];
        let packed = group.pack(&ops).unwrap();
        assert_eq!(group.unpack(packed), ops);
    }

    #[test]
    fn pack_rejects_wide_operand() {
        let group = OperandGroup::new(GroupLayout::new(8, 2).unwrap());
        assert_eq!(
            group.pack(&[256, 0]),
            Err(CodeError::OperandTooWide {
                required: 9,
                available: 8
            })
        );
    }

    #[test]
    fn pack_rejects_wrong_count() {
        let group = OperandGroup::new(GroupLayout::new(8, 2).unwrap());
        assert!(matches!(
            group.pack(&[1, 2, 3]),
            Err(CodeError::InvalidLayout(_))
        ));
    }

    #[test]
    fn pack_matches_equation_2() {
        // AN' (before ×A) = Σ 2^{i·b} N_i.
        let group = OperandGroup::new(GroupLayout::new(4, 3).unwrap());
        let packed = group.pack(&[5, 9, 6]).unwrap();
        assert_eq!(packed.to_u64(), Some(5 + (9 << 4) + (6 << 8)));
    }

    #[test]
    fn split_signed_positive_single_lane() {
        let group = OperandGroup::new(GroupLayout::new(8, 4).unwrap());
        let digits = group.split_signed(wideint::I256::from_i128(5 << 16));
        assert_eq!(digits, vec![0, 0, 5, 0]);
    }

    #[test]
    fn split_signed_balances_large_digit() {
        let group = OperandGroup::new(GroupLayout::new(8, 4).unwrap());
        // 200 ≥ 128 = 2^8/2, so it becomes 200 − 256 = −56 with a carry.
        let digits = group.split_signed(wideint::I256::from_i128(200));
        assert_eq!(digits, vec![-56, 1, 0, 0]);
        // Reconstruction: −56 + 1·256 = 200.
        let recon: i128 = digits
            .iter()
            .enumerate()
            .map(|(i, &d)| d as i128 * (1i128 << (8 * i)))
            .sum();
        assert_eq!(recon, 200);
    }

    #[test]
    fn split_signed_reconstructs_mixed_errors() {
        let group = OperandGroup::new(GroupLayout::new(16, 8).unwrap());
        for e in [-3i128 << 40, 7 << 100, (1 << 90) - (1 << 20), -1, 1] {
            let digits = group.split_signed(wideint::I256::from_i128(e));
            let recon: i128 = digits
                .iter()
                .enumerate()
                .map(|(i, &d)| d as i128 * (1i128 << (16 * i)))
                .sum();
            assert_eq!(recon, e, "error {e}");
        }
    }

    #[test]
    fn split_signed_zero() {
        let group = OperandGroup::new(GroupLayout::PAPER_128);
        assert_eq!(group.split_signed(wideint::I256::ZERO), vec![0; 8]);
    }
}
