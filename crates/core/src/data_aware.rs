//! Data-aware syndrome allocation (§V-B1 of the paper).
//!
//! Given a [`RowErrorModel`] describing how likely each physical row of a
//! stored, encoded matrix is to err, this module builds a correction
//! table that spends its `A − 1` residue slots on the *most damaging*
//! error events — ranked by `probability × bit weight` — rather than on
//! all single-bit positions uniformly. Arrays with stuck-at faults get a
//! split table: half the capacity corrects combinations involving the
//! deterministic stuck-cell error, half corrects ordinary transient
//! events.

use crate::{
    AbnCode, AnCode, CodeError, CorrectionTable, ErrorList, ErrorListConfig, RowErrorModel,
    TableHalf,
};

/// Configuration for data-aware table construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DataAwareConfig {
    /// Enumeration bounds for the error list.
    pub error_list: ErrorListConfig,
}

/// Builds a data-aware correction table for `model` under modulus `a`.
///
/// Candidates are taken in descending score order; a candidate is added
/// when its residue is unique and still free. When the model contains
/// stuck rows, the table is split: stuck-involving candidates may occupy
/// at most half the slots, transient candidates the rest (§V-B1 —
/// "we therefore split the table into two halves").
///
/// # Errors
///
/// Returns [`CodeError::InvalidA`] for invalid `a`.
///
/// # Examples
///
/// ```
/// use ancode::data_aware::{build_table, DataAwareConfig};
/// use ancode::{RowError, RowErrorModel};
///
/// let model = RowErrorModel::new(
///     vec![RowError::symmetric(0, 0.01), RowError::symmetric(4, 0.2)],
///     8,
/// );
/// let table = build_table(19, &model, &DataAwareConfig::default())?;
/// // The noisy, significant MSB row is covered.
/// assert!(table.iter().any(|(_, e)| e.syndrome.msb() == 4));
/// # Ok::<(), ancode::CodeError>(())
/// ```
pub fn build_table(
    a: u64,
    model: &RowErrorModel,
    config: &DataAwareConfig,
) -> Result<CorrectionTable, CodeError> {
    let code = AnCode::new(a)?;
    let list = ErrorList::build(model, &config.error_list);
    let mut table = CorrectionTable::new(a)?;

    let has_stuck = model.stuck_rows().next().is_some();
    let capacity = a as usize - 1;
    let (stuck_budget, transient_budget) = if has_stuck {
        (capacity / 2, capacity - capacity / 2)
    } else {
        (0, capacity)
    };
    let mut stuck_used = 0;
    let mut transient_used = 0;

    for candidate in list.iter() {
        let (half, used, budget) = if candidate.involves_stuck {
            (TableHalf::StuckAware, &mut stuck_used, stuck_budget)
        } else {
            (TableHalf::Transient, &mut transient_used, transient_budget)
        };
        if *used >= budget {
            continue;
        }
        if table
            .try_insert(&code, candidate.syndrome.clone(), candidate.probability, half)
            .is_ok()
        {
            *used += 1;
        }
        if stuck_used >= stuck_budget && transient_used >= transient_budget {
            break;
        }
    }
    Ok(table)
}

/// Builds a complete data-aware ABN code: table from [`build_table`],
/// detection term `b`.
///
/// # Errors
///
/// Propagates construction errors from [`build_table`] and
/// [`AbnCode::from_table`].
pub fn build_code(
    a: u64,
    b: u64,
    model: &RowErrorModel,
    data_bits: u32,
    config: &DataAwareConfig,
) -> Result<AbnCode, CodeError> {
    let table = build_table(a, model, config)?;
    AbnCode::from_table(a, b, table, data_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowError;

    fn noisy_msb_model() -> RowErrorModel {
        RowErrorModel::new(
            vec![
                RowError {
                    lsb_bit: 0,
                    p_high: 0.001,
                    p_low: 0.0001,
                    stuck: false,
                },
                RowError {
                    lsb_bit: 2,
                    p_high: 0.01,
                    p_low: 0.001,
                    stuck: false,
                },
                RowError {
                    lsb_bit: 4,
                    p_high: 0.05,
                    p_low: 0.005,
                    stuck: false,
                },
                RowError {
                    lsb_bit: 6,
                    p_high: 0.15,
                    p_low: 0.01,
                    stuck: false,
                },
            ],
            8,
        )
    }

    #[test]
    fn most_damaging_event_allocated_first() {
        let table = build_table(19, &noisy_msb_model(), &DataAwareConfig::default()).unwrap();
        // The highest-scoring event is +2^6 (p = 0.15, weight 64); it
        // must be present.
        let top = table
            .iter()
            .find(|(_, e)| e.syndrome.value().to_i128() == Some(64));
        assert!(top.is_some());
    }

    #[test]
    fn table_not_overfilled() {
        let table = build_table(7, &noisy_msb_model(), &DataAwareConfig::default()).unwrap();
        assert!(table.len() <= 6);
    }

    #[test]
    fn covered_probability_increases_with_a() {
        let model = noisy_msb_model();
        let config = DataAwareConfig::default();
        let small = build_table(7, &model, &config).unwrap();
        let large = build_table(61, &model, &config).unwrap();
        assert!(large.covered_probability() >= small.covered_probability());
    }

    #[test]
    fn split_table_reserves_stuck_half() {
        let mut rows = noisy_msb_model().rows().to_vec();
        rows[1].stuck = true;
        let model = RowErrorModel::new(rows, 8);
        let table = build_table(19, &model, &DataAwareConfig::default()).unwrap();
        let (transient, stuck) = table.half_sizes();
        assert!(stuck > 0, "stuck-aware half must be populated");
        assert!(stuck <= 9, "stuck half bounded by capacity/2");
        assert!(transient > 0, "transient half must be populated");
    }

    #[test]
    fn no_stuck_rows_means_single_half() {
        let table = build_table(19, &noisy_msb_model(), &DataAwareConfig::default()).unwrap();
        let (_, stuck) = table.half_sizes();
        assert_eq!(stuck, 0);
    }

    #[test]
    fn build_code_end_to_end() {
        use crate::CorrectionPolicy;
        use wideint::{I256, U256};

        let code = build_code(19, 3, &noisy_msb_model(), 8, &DataAwareConfig::default()).unwrap();
        let clean = code.encode(U256::from(200u64)).unwrap();
        // Inject the dominant error (+2^6); the data-aware table fixes it.
        let observed = I256::from(clean) + I256::from_i128(64);
        let out = code.decode(observed, CorrectionPolicy::Revert);
        assert!(out.status.was_corrected());
        assert_eq!(out.value.to_i128(), Some(200));
    }

    #[test]
    fn invalid_a_propagates() {
        assert!(build_table(4, &noisy_msb_model(), &DataAwareConfig::default()).is_err());
    }
}
