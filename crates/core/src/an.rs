//! Plain AN codes: multiplication encoding and residue checks.

use wideint::{I256, U256};

use crate::{CodeError, Syndrome, SyndromeFamily};

/// A plain AN code: data is encoded by multiplication with the constant
/// `A`, and a computation result is a valid code word iff it is divisible
/// by `A`.
///
/// `AnCode` provides encoding, residue computation, and code-word checks;
/// the full correct-and-detect pipeline (including the `B` term and
/// correction tables) lives in [`AbnCode`](crate::AbnCode).
///
/// # Examples
///
/// ```
/// use ancode::AnCode;
/// use wideint::U256;
///
/// let code = AnCode::new(19)?;
/// let x = code.encode(U256::from(11u64))?;
/// let y = code.encode(U256::from(15u64))?;
///
/// // Addition is conserved: A·11 + A·15 = A·26 (Figure 4 of the paper).
/// let sum = x + y;
/// assert!(code.is_codeword(sum));
/// assert_eq!(sum / U256::from(19u64), U256::from(26u64));
///
/// // An additive error of +2 leaves residue 2.
/// assert_eq!(code.residue(sum + U256::from(2u64)), 2);
/// # Ok::<(), ancode::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnCode {
    a: u64,
}

impl AnCode {
    /// Creates an AN code with multiplier `a`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidA`] unless `a` is odd and at least 3:
    /// an even `a` shares a factor with every syndrome `±2^i`, collapsing
    /// their residues, and `a < 3` has no nonzero residue to signal an
    /// error.
    pub fn new(a: u64) -> Result<AnCode, CodeError> {
        if a < 3 || a % 2 == 0 {
            return Err(CodeError::InvalidA(a));
        }
        Ok(AnCode { a })
    }

    /// The multiplier `A`.
    #[inline]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The number of check bits the code adds: `ceil(log2(A))`.
    ///
    /// Encoding multiplies by `A`, growing the operand by at most this
    /// many bits.
    #[inline]
    pub fn check_bits(&self) -> u32 {
        64 - (self.a - 1).leading_zeros()
    }

    /// Encodes `x` as `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Overflow`] if `A·x` exceeds 256 bits.
    pub fn encode(&self, x: U256) -> Result<U256, CodeError> {
        x.checked_mul_u64(self.a).ok_or(CodeError::Overflow)
    }

    /// The residue `n mod A`; zero for valid code words.
    ///
    /// Accepts signed inputs because a corrected value can transiently go
    /// negative during decoding; the residue is always the Euclidean
    /// (non-negative) remainder.
    pub fn residue<N: Into<I256>>(&self, n: N) -> u64 {
        n.into()
            .rem_euclid_u64(self.a)
            .expect("A is validated nonzero")
    }

    /// Whether `n` is divisible by `A` (no detectable error).
    pub fn is_codeword(&self, n: U256) -> bool {
        self.residue(n) == 0
    }

    /// Decodes a *valid* code word back to its data value.
    ///
    /// Returns `None` if `n` is not divisible by `A`; use
    /// [`AbnCode::decode`](crate::AbnCode::decode) for erroneous inputs.
    pub fn decode_exact(&self, n: U256) -> Option<U256> {
        let (q, r) = n.div_rem_u64(self.a).expect("A is validated nonzero");
        if r == 0 {
            Some(q)
        } else {
            None
        }
    }

    /// Checks that every syndrome in `family` has a distinct nonzero
    /// residue under `A`, i.e. that this code can correct the family.
    ///
    /// Returns the residue → syndrome assignment on success.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ResidueCollision`] naming the first residue
    /// class that is zero or shared by two syndromes.
    pub fn assign_residues(
        &self,
        family: SyndromeFamily,
    ) -> Result<Vec<(u64, Syndrome)>, CodeError> {
        let mut seen: Vec<Option<Syndrome>> = vec![None; self.a as usize];
        let mut out = Vec::new();
        for syndrome in family.enumerate() {
            let r = self.residue(syndrome.value());
            if r == 0 || seen[r as usize].is_some() {
                return Err(CodeError::ResidueCollision { a: self.a, residue: r });
            }
            seen[r as usize] = Some(syndrome.clone());
            out.push((r, syndrome));
        }
        Ok(out)
    }

    /// Whether this code can correct every syndrome in `family`.
    pub fn corrects(&self, family: SyndromeFamily) -> bool {
        self.assign_residues(family).is_ok()
    }
}

/// Finds the smallest valid `A` that corrects all single-bit errors
/// `±2^i` over a coded word of exactly `width` bits.
///
/// This is the classic single-error-correcting AN-code table (Brown
/// 1960), reproducing the constants cited in the paper:
///
/// ```
/// use ancode::min_single_error_a;
///
/// assert_eq!(min_single_error_a(9), 19);  // Figure 4: "A = 19 … 9 bits wide"
/// assert_eq!(min_single_error_a(39), 79); // "A = 79 … final 39 bit encoded value"
/// ```
///
/// For a given *data* width, callers typically iterate: the coded width
/// is `data_bits + check_bits(A)`, and `check_bits` itself depends on
/// `A`. [`search::min_a_for_data_bits`](crate::search::min_a_for_data_bits)
/// performs that fixed-point search.
///
/// # Panics
///
/// Panics if `width` is 0 or larger than 200 (the coded word must fit
/// comfortably in 256 bits).
pub fn min_single_error_a(width: u32) -> u64 {
    assert!(
        (1..=200).contains(&width),
        "width {width} out of supported range"
    );
    let mut a = 2 * width as u64 + 1; // need ≥ 2·width nonzero residues
    loop {
        let code = AnCode::new(a).expect("odd candidates are valid");
        if code.corrects(SyndromeFamily::SingleBit { width }) {
            return a;
        }
        a += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_and_tiny_a() {
        assert_eq!(AnCode::new(4), Err(CodeError::InvalidA(4)));
        assert_eq!(AnCode::new(1), Err(CodeError::InvalidA(1)));
        assert_eq!(AnCode::new(0), Err(CodeError::InvalidA(0)));
        assert!(AnCode::new(3).is_ok());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let code = AnCode::new(79).unwrap();
        for x in [0u64, 1, 1024, u32::MAX as u64] {
            let e = code.encode(U256::from(x)).unwrap();
            assert!(code.is_codeword(e));
            assert_eq!(code.decode_exact(e), Some(U256::from(x)));
        }
    }

    #[test]
    fn encode_overflow_detected() {
        let code = AnCode::new(79).unwrap();
        assert_eq!(code.encode(U256::MAX), Err(CodeError::Overflow));
    }

    #[test]
    fn addition_is_conserved() {
        // The defining property: f(x) + f(y) == f(x + y).
        let code = AnCode::new(19).unwrap();
        let fx = code.encode(U256::from(11u64)).unwrap();
        let fy = code.encode(U256::from(15u64)).unwrap();
        assert_eq!(fx + fy, code.encode(U256::from(26u64)).unwrap());
    }

    #[test]
    fn figure_4_example() {
        // Paper Figure 4: A = 19, encoded sum 494, +2 error → 496,
        // residue 2, corrected back to 494, decoded 26.
        let code = AnCode::new(19).unwrap();
        let observed = U256::from(496u64);
        assert_eq!(code.residue(observed), 2);
        let corrected = observed - U256::from(2u64);
        assert_eq!(code.decode_exact(corrected), Some(U256::from(26u64)));
    }

    #[test]
    fn residue_of_negative_values() {
        let code = AnCode::new(19).unwrap();
        assert_eq!(code.residue(I256::from_i128(-2)), 17);
        assert_eq!(code.residue(I256::from_i128(-19)), 0);
    }

    #[test]
    fn a3_detects_but_cannot_correct() {
        // A = 3 is the arithmetic analogue of a parity bit: all ±1/±2
        // syndromes are detected (nonzero residue) but residues collide
        // across bit positions, so correction is impossible.
        let code = AnCode::new(3).unwrap();
        for bit in 0..8 {
            let s = Syndrome::single(bit, 1);
            assert_ne!(code.residue(s.value()), 0);
        }
        assert!(!code.corrects(SyndromeFamily::SingleBit { width: 8 }));
    }

    #[test]
    fn minimal_a_values_match_paper() {
        assert_eq!(min_single_error_a(9), 19);
        assert_eq!(min_single_error_a(39), 79);
    }

    #[test]
    fn minimal_a_is_minimal() {
        // Every smaller odd A must fail for the same width.
        for width in [4u32, 9, 16] {
            let a = min_single_error_a(width);
            let family = SyndromeFamily::SingleBit { width };
            let mut candidate = 3;
            while candidate < a {
                assert!(!AnCode::new(candidate).unwrap().corrects(family));
                candidate += 2;
            }
        }
    }

    #[test]
    fn check_bits_matches_log2() {
        assert_eq!(AnCode::new(19).unwrap().check_bits(), 5);
        assert_eq!(AnCode::new(79).unwrap().check_bits(), 7);
        assert_eq!(AnCode::new(3).unwrap().check_bits(), 2);
    }

    #[test]
    fn a19_assigns_all_residues_for_9_bit_words() {
        // A = 19 over 9-bit words uses 18 of 18 nonzero residues: the
        // "every residual used" efficiency property from §II-D.
        let code = AnCode::new(19).unwrap();
        let assignment = code
            .assign_residues(SyndromeFamily::SingleBit { width: 9 })
            .unwrap();
        assert_eq!(assignment.len(), 18);
        let mut residues: Vec<u64> = assignment.iter().map(|(r, _)| *r).collect();
        residues.sort_unstable();
        assert_eq!(residues, (1..=18).collect::<Vec<u64>>());
    }

    #[test]
    fn a19_fails_beyond_9_bits() {
        let code = AnCode::new(19).unwrap();
        assert!(!code.corrects(SyndromeFamily::SingleBit { width: 10 }));
    }
}
