//! Selection of the code constant `A` (§V-B4 of the paper).
//!
//! There is no known closed form for the best `A` given a syndrome
//! budget, so the paper searches: candidates are all odd values whose
//! product with `B` fits the check-bit budget, each candidate's
//! data-aware table is built, and the `A` whose table covers the most
//! error probability wins. Because the encoded bit patterns — and hence
//! the row error probabilities — depend on `A` itself, the caller
//! supplies a function from candidate `A` to its [`RowErrorModel`].
//!
//! The hardware implementation constrains the divider to five constant
//! `A` values ([`DEFAULT_HARDWARE_CANDIDATES`]); both the full and the
//! constrained search are provided.

use crate::data_aware::{build_code, DataAwareConfig};
use crate::{AbnCode, AnCode, CodeError, RowErrorModel, SyndromeFamily};

/// The five constant `A` values the simplified divider supports (§VI).
///
/// Chosen as the largest prime-rich odd values under the 7–10 check-bit
/// budgets used in the evaluation; during the paper's full search "more
/// than half of the IMAs select one of three A values", motivating the
/// constant-divider optimization.
pub const DEFAULT_HARDWARE_CANDIDATES: [u64; 5] = [19, 41, 79, 167, 337];

/// Enumerates candidate `A` values for a check-bit budget.
///
/// Candidates are all odd `A ≥ 3` with `A·B < 2^check_bits` — "all odd
/// numbers that can be represented by the number of check bits available"
/// with "the maximum candidate A … divided by B".
///
/// # Examples
///
/// ```
/// use ancode::search::candidate_as;
///
/// let c = candidate_as(7, 3);
/// assert!(c.contains(&19) && c.contains(&41));
/// assert!(c.iter().all(|&a| a * 3 < 128));
/// ```
pub fn candidate_as(check_bits: u32, b: u64) -> Vec<u64> {
    assert!(b >= 1, "B must be positive");
    assert!(check_bits < 63, "check-bit budget out of range");
    let max = ((1u64 << check_bits) - 1) / b;
    (3..=max).step_by(2).collect()
}

/// The outcome of an `A` search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The winning code.
    pub code: AbnCode,
    /// The covered error probability of the winning table.
    pub coverage: f64,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

/// Searches `candidates` for the `A` whose data-aware table covers the
/// greatest error probability.
///
/// `model_for` maps a candidate `A` to the row-error model of the matrix
/// *encoded with that `A`* (the circular dependence noted in the paper:
/// the stored bit patterns, and hence the per-row 1-counts and error
/// probabilities, change with `A`). A candidate whose model cannot be
/// built (`Err`) is rejected and the search moves on, exactly like a
/// candidate whose code construction fails.
///
/// # Errors
///
/// Returns [`CodeError::InvalidA`] if `candidates` is empty or no
/// candidate yields both a model and a valid code.
pub fn select_a<F>(
    candidates: &[u64],
    b: u64,
    data_bits: u32,
    config: &DataAwareConfig,
    mut model_for: F,
) -> Result<SearchResult, CodeError>
where
    F: FnMut(u64) -> Result<RowErrorModel, CodeError>,
{
    let _span = obs::span!("a_search");
    let mut best: Option<(AbnCode, f64)> = None;
    let mut evaluated = 0;
    for &a in candidates {
        obs::counter!(a_search_candidates).incr();
        let Ok(model) = model_for(a) else {
            obs::counter!(a_search_rejected).incr();
            continue;
        };
        let Ok(code) = build_code(a, b, &model, data_bits, config) else {
            obs::counter!(a_search_rejected).incr();
            continue;
        };
        evaluated += 1;
        let coverage = code.table().covered_probability();
        let better = match &best {
            Some((_, best_cov)) => coverage > *best_cov,
            None => true,
        };
        if better {
            best = Some((code, coverage));
        }
    }
    let (code, coverage) = best.ok_or(CodeError::InvalidA(0))?;
    Ok(SearchResult {
        code,
        coverage,
        evaluated,
    })
}

/// Full search over every odd `A` in the check-bit budget.
///
/// # Errors
///
/// See [`select_a`].
pub fn select_a_full<F>(
    check_bits: u32,
    b: u64,
    data_bits: u32,
    config: &DataAwareConfig,
    model_for: F,
) -> Result<SearchResult, CodeError>
where
    F: FnMut(u64) -> Result<RowErrorModel, CodeError>,
{
    let candidates = candidate_as(check_bits, b);
    select_a(&candidates, b, data_bits, config, model_for)
}

/// Hardware-constrained search over the five constant divider values
/// that fit the check-bit budget.
///
/// # Errors
///
/// See [`select_a`].
pub fn select_a_hardware<F>(
    check_bits: u32,
    b: u64,
    data_bits: u32,
    config: &DataAwareConfig,
    model_for: F,
) -> Result<SearchResult, CodeError>
where
    F: FnMut(u64) -> Result<RowErrorModel, CodeError>,
{
    let max = ((1u64 << check_bits) - 1) / b;
    let candidates: Vec<u64> = DEFAULT_HARDWARE_CANDIDATES
        .iter()
        .copied()
        .filter(|&a| a <= max)
        .collect();
    select_a(&candidates, b, data_bits, config, model_for)
}

/// Finds the smallest `A` that corrects all single-bit errors for
/// `data_bits` of data, accounting for the growth of the coded word with
/// `A` itself.
///
/// # Examples
///
/// ```
/// use ancode::search::min_a_for_data_bits;
///
/// // 32-bit data: the classic A = 79 (39-bit coded words).
/// assert_eq!(min_a_for_data_bits(32), 79);
/// ```
///
/// # Panics
///
/// Panics if `data_bits` is 0 or larger than 190.
pub fn min_a_for_data_bits(data_bits: u32) -> u64 {
    assert!(
        (1..=190).contains(&data_bits),
        "data_bits {data_bits} out of supported range"
    );
    let mut a = 3u64;
    loop {
        let code = AnCode::new(a).expect("odd candidates are valid");
        let width = data_bits + code.check_bits();
        if code.corrects(SyndromeFamily::SingleBit { width }) {
            return a;
        }
        a += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowError;

    fn model(noise: f64) -> RowErrorModel {
        RowErrorModel::new(
            (0..8)
                .map(|i| RowError::symmetric(i * 2, noise * (i + 1) as f64 / 8.0))
                .collect(),
            16,
        )
    }

    #[test]
    fn candidates_respect_budget() {
        let c = candidate_as(9, 3);
        assert!(c.iter().all(|&a| a % 2 == 1 && a * 3 < 512));
        assert_eq!(*c.last().unwrap(), 169);
    }

    #[test]
    fn full_search_beats_or_matches_hardware() {
        let config = DataAwareConfig::default();
        let full = select_a_full(8, 3, 16, &config, |_| Ok(model(0.01))).unwrap();
        let hw = select_a_hardware(8, 3, 16, &config, |_| Ok(model(0.01))).unwrap();
        assert!(full.coverage >= hw.coverage);
        assert!(full.evaluated > hw.evaluated);
    }

    #[test]
    fn larger_budget_never_hurts() {
        let config = DataAwareConfig::default();
        let small = select_a_full(7, 3, 16, &config, |_| Ok(model(0.02))).unwrap();
        let large = select_a_full(10, 3, 16, &config, |_| Ok(model(0.02))).unwrap();
        assert!(large.coverage >= small.coverage);
    }

    #[test]
    fn model_for_receives_each_candidate() {
        let mut seen = Vec::new();
        let config = DataAwareConfig::default();
        let candidates = [19u64, 41];
        select_a(&candidates, 3, 16, &config, |a| {
            seen.push(a);
            Ok(model(0.01))
        })
        .unwrap();
        assert_eq!(seen, vec![19, 41]);
    }

    #[test]
    fn empty_candidates_error() {
        let config = DataAwareConfig::default();
        assert!(select_a(&[], 3, 16, &config, |_| Ok(model(0.01))).is_err());
    }

    #[test]
    fn min_a_for_data_bits_classic() {
        assert_eq!(min_a_for_data_bits(32), 79);
        // Strict accounting: 5-bit data + 5 check bits = 10-bit coded
        // words, which A = 19 cannot fully cover (the paper's 19 covers
        // the 9-bit prefix); the smallest fully covering A is 23.
        assert_eq!(min_a_for_data_bits(5), 23);
    }

    #[test]
    fn hardware_candidates_are_valid_odd() {
        for a in DEFAULT_HARDWARE_CANDIDATES {
            assert!(AnCode::new(a).is_ok());
        }
    }
}
