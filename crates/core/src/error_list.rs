//! Data-aware error-candidate enumeration (Figure 8 of the paper).
//!
//! Given the per-physical-row error probabilities of a stored matrix,
//! this module enumerates candidate error events — single rows and
//! combinations of 2, 3 or 4 rows, each with a sign pattern — computes
//! each event's probability, and scores it by
//! `probability × 2^(bit position of the most significant member)`.
//! The sorted list drives the greedy syndrome allocation in
//! [`data_aware`](crate::data_aware).

use crate::{RowError, RowErrorModel, Syndrome, SyndromeTerm};

/// A candidate error event: a concrete syndrome with its estimated
/// probability and allocation score.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorCandidate {
    /// The additive syndrome the event produces.
    pub syndrome: Syndrome,
    /// Estimated probability of the event.
    pub probability: f64,
    /// Allocation priority: `probability × 2^(msb bit weight)`.
    pub score: f64,
    /// Whether the event involves a stuck-at row.
    pub involves_stuck: bool,
}

/// Tuning knobs for error-list enumeration.
///
/// Enumerating every sign pattern of every 4-row combination of a
/// 140-row group is infeasible (and pointless — the table holds at most
/// `A − 1` entries), so enumeration considers only the `top_rows` most
/// error-prone rows for multi-row combinations and prunes events whose
/// probability falls below `min_probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorListConfig {
    /// Maximum number of rows participating in one error event (the
    /// paper uses 4, matching the sparse 4-index syndrome encoding).
    pub max_rows_per_event: usize,
    /// Only the `top_rows` highest-probability rows are considered for
    /// multi-row combinations (single-row events always cover all rows).
    pub top_rows: usize,
    /// Events with probability below this bound are pruned.
    pub min_probability: f64,
    /// Hard cap on the number of candidates returned.
    pub max_candidates: usize,
}

impl Default for ErrorListConfig {
    fn default() -> ErrorListConfig {
        ErrorListConfig {
            max_rows_per_event: 4,
            top_rows: 16,
            min_probability: 1e-12,
            max_candidates: 8192,
        }
    }
}

/// The sorted list of candidate error events for one row-error model.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorList {
    candidates: Vec<ErrorCandidate>,
}

impl ErrorList {
    /// Enumerates and scores error candidates for `model`.
    ///
    /// Rows flagged [`stuck`](crate::RowError::stuck) contribute
    /// deterministic errors; events involving them are marked so the
    /// split-table allocator can place them in the stuck-aware half.
    ///
    /// # Examples
    ///
    /// ```
    /// use ancode::{ErrorList, ErrorListConfig, RowError, RowErrorModel};
    ///
    /// let model = RowErrorModel::new(
    ///     vec![RowError::symmetric(0, 0.05), RowError::symmetric(4, 0.20)],
    ///     8,
    /// );
    /// let list = ErrorList::build(&model, &ErrorListConfig::default());
    /// // The MSB-row error outranks the LSB-row error: higher probability
    /// // *and* higher bit weight.
    /// assert_eq!(list.candidates()[0].syndrome.msb(), 4);
    /// ```
    pub fn build(model: &RowErrorModel, config: &ErrorListConfig) -> ErrorList {
        let mut candidates = Vec::new();

        // Single-row events over every row.
        for row in model.rows() {
            push_row_events(&mut candidates, model, &[*row], config);
        }

        // Multi-row combinations over the most error-prone rows.
        let mut ranked: Vec<RowError> = model.rows().to_vec();
        ranked.sort_by(|a, b| {
            b.p_any()
                .partial_cmp(&a.p_any())
                .expect("probabilities are finite")
        });
        ranked.truncate(config.top_rows);
        ranked.sort_by_key(|r| r.lsb_bit);

        let k_max = config.max_rows_per_event.min(ranked.len()).min(4);
        for k in 2..=k_max {
            let mut combo = Vec::with_capacity(k);
            combine(&ranked, k, 0, &mut combo, &mut |rows| {
                push_row_events(&mut candidates, model, rows, config);
            });
        }

        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.syndrome.msb().cmp(&b.syndrome.msb()))
        });
        candidates.truncate(config.max_candidates);
        ErrorList { candidates }
    }

    /// The candidates, sorted by descending score.
    pub fn candidates(&self) -> &[ErrorCandidate] {
        &self.candidates
    }

    /// Iterates over candidates in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &ErrorCandidate> {
        self.candidates.iter()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Emits all sign patterns for one row combination.
fn push_row_events(
    out: &mut Vec<ErrorCandidate>,
    model: &RowErrorModel,
    rows: &[RowError],
    config: &ErrorListConfig,
) {
    // Each row errs high (+1, probability p_high) or low (−1, p_low);
    // enumerate every sign assignment with nonzero probability.
    let n = rows.len();
    for pattern in 0..(1u32 << n) {
        let mut probability = 1.0;
        let mut terms = Vec::with_capacity(n);
        let mut involves_stuck = false;
        for (i, row) in rows.iter().enumerate() {
            let high = pattern & (1 << i) == 0;
            // A stuck cell errs deterministically when driven; treat its
            // activity factor as certain for ranking purposes.
            let p = if row.stuck {
                involves_stuck = true;
                if high {
                    1.0
                } else {
                    0.0
                }
            } else if high {
                row.p_high
            } else {
                row.p_low
            };
            probability *= p;
            terms.push(SyndromeTerm::new(row.lsb_bit, if high { 1 } else { -1 }));
        }
        if probability < config.min_probability {
            continue;
        }
        let syndrome = Syndrome::new(terms);
        let score = probability * model.bit_weight(syndrome.msb());
        out.push(ErrorCandidate {
            syndrome,
            probability,
            score,
            involves_stuck,
        });
    }
}

/// Visits every `k`-combination of `rows[start..]`.
fn combine<F: FnMut(&[RowError])>(
    rows: &[RowError],
    k: usize,
    start: usize,
    combo: &mut Vec<RowError>,
    visit: &mut F,
) {
    if combo.len() == k {
        visit(combo);
        return;
    }
    let remaining = k - combo.len();
    for i in start..=rows.len().saturating_sub(remaining) {
        combo.push(rows[i]);
        combine(rows, k, i + 1, combo, visit);
        combo.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_model() -> RowErrorModel {
        RowErrorModel::new(
            vec![
                RowError {
                    lsb_bit: 0,
                    p_high: 0.10,
                    p_low: 0.01,
                    stuck: false,
                },
                RowError {
                    lsb_bit: 2,
                    p_high: 0.20,
                    p_low: 0.02,
                    stuck: false,
                },
            ],
            8,
        )
    }

    #[test]
    fn single_row_events_cover_both_signs() {
        let list = ErrorList::build(&simple_model(), &ErrorListConfig::default());
        let values: Vec<i128> = list
            .iter()
            .map(|c| c.syndrome.value().to_i128().unwrap())
            .collect();
        for v in [1, -1, 4, -4] {
            assert!(values.contains(&v), "missing syndrome {v}");
        }
    }

    #[test]
    fn pair_probability_is_product() {
        let list = ErrorList::build(&simple_model(), &ErrorListConfig::default());
        // +1 at bit 0 and +1 at bit 2 → syndrome +5, probability .1 × .2.
        let pair = list
            .iter()
            .find(|c| c.syndrome.value().to_i128() == Some(5))
            .expect("pair event present");
        assert!((pair.probability - 0.02).abs() < 1e-12);
    }

    #[test]
    fn score_weights_msb_position() {
        let list = ErrorList::build(&simple_model(), &ErrorListConfig::default());
        let at2 = list
            .iter()
            .find(|c| c.syndrome.value().to_i128() == Some(4))
            .unwrap();
        // probability 0.2 × weight 2^2.
        assert!((at2.score - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sorted_descending_by_score() {
        let list = ErrorList::build(&simple_model(), &ErrorListConfig::default());
        for pair in list.candidates().windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(!list.is_empty());
    }

    #[test]
    fn pruning_respects_min_probability() {
        let config = ErrorListConfig {
            min_probability: 0.05,
            ..ErrorListConfig::default()
        };
        let list = ErrorList::build(&simple_model(), &config);
        assert!(list.iter().all(|c| c.probability >= 0.05));
        // Low-probability low-sign events are gone.
        assert!(list
            .iter()
            .all(|c| c.syndrome.value().to_i128() != Some(-1)));
    }

    #[test]
    fn stuck_rows_marked_and_deterministic() {
        let model = RowErrorModel::new(
            vec![
                RowError {
                    lsb_bit: 0,
                    p_high: 0.1,
                    p_low: 0.0,
                    stuck: false,
                },
                RowError {
                    lsb_bit: 4,
                    p_high: 0.0,
                    p_low: 0.0,
                    stuck: true,
                },
            ],
            8,
        );
        let list = ErrorList::build(&model, &ErrorListConfig::default());
        let stuck_single = list
            .iter()
            .find(|c| c.syndrome.value().to_i128() == Some(16))
            .expect("stuck row event present");
        assert!(stuck_single.involves_stuck);
        assert!((stuck_single.probability - 1.0).abs() < 1e-12);
        // Stuck row appearing with the transient row.
        let pair = list
            .iter()
            .find(|c| c.syndrome.value().to_i128() == Some(17))
            .expect("pair with stuck row present");
        assert!(pair.involves_stuck);
        assert!((pair.probability - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_candidates_truncates() {
        let config = ErrorListConfig {
            max_candidates: 3,
            ..ErrorListConfig::default()
        };
        let list = ErrorList::build(&simple_model(), &config);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn four_row_combinations_present() {
        let rows = (0..5)
            .map(|i| RowError::symmetric(i * 2, 0.3))
            .collect::<Vec<_>>();
        let model = RowErrorModel::new(rows, 16);
        let list = ErrorList::build(&model, &ErrorListConfig::default());
        assert!(list.iter().any(|c| c.syndrome.terms().len() == 4));
        // But never more than 4 rows per event.
        assert!(list.iter().all(|c| c.syndrome.terms().len() <= 4));
    }
}
