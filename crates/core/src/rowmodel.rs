//! Per-physical-row error models.
//!
//! Data-aware ABN codes allocate correction capability by *how likely*
//! each physical row is to mis-quantize and *how much* an error there
//! matters. This module defines the interface between the code
//! constructor and whatever produces those probabilities — an analytical
//! crossbar model (the `xbar` crate's binomial-CDF predictor), transient
//! simulation, or characterization data from a fabricated part (§V-B5).

/// Error characteristics of one physical row of a coded operand group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowError {
    /// Bit position (within the coded word) of this row's least
    /// significant bit. With `c` bits per cell, row `r` has
    /// `lsb_bit = r·c`.
    pub lsb_bit: u32,
    /// Probability that the row's ADC output quantizes one step *high*
    /// (the dominant direction for RTN, which transiently lowers cell
    /// resistance and raises current).
    pub p_high: f64,
    /// Probability that the row's ADC output quantizes one step *low*.
    pub p_low: f64,
    /// Whether the row contains a stuck-at faulty cell, which produces a
    /// deterministic error whenever the input vector drives that cell.
    pub stuck: bool,
}

impl RowError {
    /// A row with symmetric error probability and no stuck cells.
    pub fn symmetric(lsb_bit: u32, p: f64) -> RowError {
        RowError {
            lsb_bit,
            p_high: p / 2.0,
            p_low: p / 2.0,
            stuck: false,
        }
    }

    /// Total probability of any single-step quantization error.
    pub fn p_any(&self) -> f64 {
        self.p_high + self.p_low
    }
}

/// The error model of every physical row backing one coded operand
/// group, plus the layout information needed to weight errors by
/// significance.
///
/// # Examples
///
/// ```
/// use ancode::{RowError, RowErrorModel};
///
/// // Four 2-bit-cell rows of an 8-bit word; the MSB row is noisier.
/// let model = RowErrorModel::new(
///     vec![
///         RowError::symmetric(0, 0.01),
///         RowError::symmetric(2, 0.01),
///         RowError::symmetric(4, 0.02),
///         RowError::symmetric(6, 0.10),
///     ],
///     8,
/// );
/// assert_eq!(model.rows().len(), 4);
/// // Bit weight of the row at bit 6 within an 8-bit operand is 2^6.
/// assert_eq!(model.bit_weight(6), 64.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowErrorModel {
    rows: Vec<RowError>,
    operand_bits: u32,
}

impl RowErrorModel {
    /// Creates a model from per-row probabilities.
    ///
    /// `operand_bits` is the width of one *underlying* operand: in a
    /// multi-operand group the error weight of a row is computed from its
    /// bit position *within its operand* (§V-B2), i.e. `lsb_bit mod
    /// operand_bits`.
    ///
    /// # Panics
    ///
    /// Panics if two rows share a bit position, if any probability is
    /// outside `[0, 1]`, or if `operand_bits == 0`.
    pub fn new(mut rows: Vec<RowError>, operand_bits: u32) -> RowErrorModel {
        assert!(operand_bits > 0, "operand width must be nonzero");
        rows.sort_by_key(|r| r.lsb_bit);
        for pair in rows.windows(2) {
            assert!(
                pair[0].lsb_bit != pair[1].lsb_bit,
                "duplicate row at bit {}",
                pair[0].lsb_bit
            );
        }
        for r in &rows {
            assert!(
                (0.0..=1.0).contains(&r.p_high) && (0.0..=1.0).contains(&r.p_low),
                "probabilities must be in [0, 1]"
            );
        }
        RowErrorModel { rows, operand_bits }
    }

    /// The rows, sorted by bit position.
    pub fn rows(&self) -> &[RowError] {
        &self.rows
    }

    /// The underlying operand width used for bit weighting.
    pub fn operand_bits(&self) -> u32 {
        self.operand_bits
    }

    /// The significance weight `2^(bit mod operand_bits)` of an error at
    /// `bit`.
    pub fn bit_weight(&self, bit: u32) -> f64 {
        ((bit % self.operand_bits) as f64).exp2()
    }

    /// Rows that contain stuck-at faults.
    pub fn stuck_rows(&self) -> impl Iterator<Item = &RowError> {
        self.rows.iter().filter(|r| r.stuck)
    }

    /// Probability that *no* row errs — the baseline success probability
    /// of an unprotected computation under this model.
    pub fn p_error_free(&self) -> f64 {
        self.rows.iter().map(|r| 1.0 - r.p_any()).product()
    }

    /// Merges another model row-wise, keeping the worst (most
    /// error-prone) probability at each bit position.
    ///
    /// One `A`/table pair serves a whole array holding many groups; the
    /// allocator considers the worst-case row at each position (§V-B1).
    #[must_use]
    pub fn worst_case_merge(&self, other: &RowErrorModel) -> RowErrorModel {
        assert_eq!(
            self.operand_bits, other.operand_bits,
            "models must share operand width"
        );
        let mut rows = self.rows.clone();
        for o in &other.rows {
            match rows.iter_mut().find(|r| r.lsb_bit == o.lsb_bit) {
                Some(r) => {
                    r.p_high = r.p_high.max(o.p_high);
                    r.p_low = r.p_low.max(o.p_low);
                    r.stuck |= o.stuck;
                }
                None => rows.push(*o),
            }
        }
        RowErrorModel::new(rows, self.operand_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_splits_probability() {
        let r = RowError::symmetric(4, 0.2);
        assert!((r.p_high - 0.1).abs() < 1e-12);
        assert!((r.p_any() - 0.2).abs() < 1e-12);
        assert!(!r.stuck);
    }

    #[test]
    fn rows_sorted_by_bit() {
        let m = RowErrorModel::new(
            vec![RowError::symmetric(8, 0.1), RowError::symmetric(0, 0.1)],
            16,
        );
        assert_eq!(m.rows()[0].lsb_bit, 0);
        assert_eq!(m.rows()[1].lsb_bit, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_rows_rejected() {
        RowErrorModel::new(
            vec![RowError::symmetric(0, 0.1), RowError::symmetric(0, 0.2)],
            16,
        );
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn bad_probability_rejected() {
        RowErrorModel::new(
            vec![RowError {
                lsb_bit: 0,
                p_high: 1.5,
                p_low: 0.0,
                stuck: false,
            }],
            16,
        );
    }

    #[test]
    fn bit_weight_wraps_at_operand_boundary() {
        let m = RowErrorModel::new(vec![RowError::symmetric(0, 0.1)], 16);
        assert_eq!(m.bit_weight(15), 32768.0);
        // Bit 16 is the LSB of the second operand in a group.
        assert_eq!(m.bit_weight(16), 1.0);
        assert_eq!(m.bit_weight(35), 8.0);
    }

    #[test]
    fn error_free_probability() {
        let m = RowErrorModel::new(
            vec![RowError::symmetric(0, 0.5), RowError::symmetric(2, 0.5)],
            8,
        );
        assert!((m.p_error_free() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn worst_case_merge_takes_max() {
        let a = RowErrorModel::new(
            vec![RowError::symmetric(0, 0.2), RowError::symmetric(2, 0.1)],
            8,
        );
        let mut stuck_row = RowError::symmetric(2, 0.4);
        stuck_row.stuck = true;
        let b = RowErrorModel::new(vec![stuck_row, RowError::symmetric(4, 0.3)], 8);
        let merged = a.worst_case_merge(&b);
        assert_eq!(merged.rows().len(), 3);
        let r2 = merged.rows().iter().find(|r| r.lsb_bit == 2).unwrap();
        assert!((r2.p_any() - 0.4).abs() < 1e-12);
        assert!(r2.stuck);
    }
}
