//! Additive error syndromes.
//!
//! In an arithmetic code an error is not a flipped bit but an *additive*
//! perturbation of the computed integer: an ADC that mis-quantizes the
//! current of one physical row by `±m` perturbs the reduced output by
//! `±m·2^p`, where `p` is the bit position that physical row feeds into
//! the shift-and-add tree (Figure 3 of the paper contrasts this with the
//! Hamming-distance view).

use std::fmt;

use wideint::I256;

/// One term of an additive syndrome: a signed error magnitude at a bit
/// position.
///
/// A quantization error of `delta` ADC steps in the physical row whose
/// least-significant bit position is `bit` contributes `delta · 2^bit` to
/// the reduced output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyndromeTerm {
    /// Bit position within the coded word (0 = least significant).
    pub bit: u32,
    /// Signed quantization error in ADC steps (typically `±1`, up to
    /// `±(2^c − 1)` for `c`-bit cells).
    pub delta: i8,
}

impl SyndromeTerm {
    /// Creates a term.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 256` or `delta == 0` (a zero term is not an
    /// error).
    pub fn new(bit: u32, delta: i8) -> SyndromeTerm {
        assert!(bit < 256, "syndrome bit {bit} out of range");
        assert!(delta != 0, "a syndrome term must be nonzero");
        SyndromeTerm { bit, delta }
    }

    /// The integer value `delta · 2^bit`.
    pub fn value(self) -> I256 {
        let mag = wideint::U256::pow2(self.bit)
            .checked_mul_u64(self.delta.unsigned_abs() as u64)
            .expect("term magnitude fits in 256 bits");
        I256::new(self.delta < 0, mag)
    }
}

impl fmt::Display for SyndromeTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+}·2^{}", self.delta, self.bit)
    }
}

/// An additive error syndrome: a small set of [`SyndromeTerm`]s.
///
/// The hardware correction table stores syndromes sparsely as up to four
/// (bit index, delta) pairs (§VI of the paper); this type mirrors that
/// representation and caches the expanded integer value.
///
/// # Examples
///
/// ```
/// use ancode::{Syndrome, SyndromeTerm};
///
/// // A +1 quantization error in the row feeding bit 4 and a -1 error in
/// // the row feeding bit 0: total perturbation +15.
/// let s = Syndrome::new(vec![SyndromeTerm::new(4, 1), SyndromeTerm::new(0, -1)]);
/// assert_eq!(s.value().to_i128(), Some(15));
/// assert_eq!(s.terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Syndrome {
    terms: Vec<SyndromeTerm>,
    value: I256,
}

impl Syndrome {
    /// Creates a syndrome from its terms.
    ///
    /// Terms are sorted by bit position; the integer value is the sum of
    /// the term values.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty (use `Option<Syndrome>` for "no error")
    /// or if two terms share a bit position.
    pub fn new(mut terms: Vec<SyndromeTerm>) -> Syndrome {
        assert!(!terms.is_empty(), "a syndrome must have at least one term");
        terms.sort();
        for pair in terms.windows(2) {
            assert!(
                pair[0].bit != pair[1].bit,
                "duplicate syndrome term at bit {}",
                pair[0].bit
            );
        }
        let value = terms.iter().map(|t| t.value()).sum();
        Syndrome { terms, value }
    }

    /// A single-term syndrome `delta · 2^bit`.
    pub fn single(bit: u32, delta: i8) -> Syndrome {
        Syndrome::new(vec![SyndromeTerm::new(bit, delta)])
    }

    /// The terms, sorted by bit position.
    pub fn terms(&self) -> &[SyndromeTerm] {
        &self.terms
    }

    /// The integer perturbation this syndrome applies to the output.
    pub fn value(&self) -> I256 {
        self.value
    }

    /// The highest bit position among the terms.
    pub fn msb(&self) -> u32 {
        self.terms.last().expect("syndromes are nonempty").bit
    }

    /// The negation of this syndrome (every delta sign flipped).
    #[must_use]
    pub fn negated(&self) -> Syndrome {
        Syndrome::new(
            self.terms
                .iter()
                .map(|t| SyndromeTerm::new(t.bit, -t.delta))
                .collect(),
        )
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// A family of syndromes a static (data-oblivious) code is designed to
/// correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SyndromeFamily {
    /// All single-bit errors `±2^i` for `i` in `0..width` — the classic
    /// single-error-correcting AN code family (A = 19 for 5-bit data,
    /// A = 79 for 32-bit data).
    SingleBit {
        /// Coded word width in bits.
        width: u32,
    },
    /// Single-bit errors plus adjacent two-bit bursts
    /// `±(2^i + 2^{i+1})` and `±2·2^i`: any quantization error of
    /// magnitude up to 3 in one physical row of a 2-bit cell.
    Burst2 {
        /// Coded word width in bits.
        width: u32,
    },
    /// Any quantization error of magnitude `1..=max_magnitude` at a cell
    /// boundary position `i·cell_bits`: the per-physical-row error family
    /// for multi-bit cells.
    CellRow {
        /// Coded word width in bits.
        width: u32,
        /// Bits per memristor cell (1–5 in the paper).
        cell_bits: u32,
        /// Largest single-row quantization error to cover.
        max_magnitude: u8,
    },
}

impl SyndromeFamily {
    /// Enumerates every syndrome in the family.
    ///
    /// # Examples
    ///
    /// ```
    /// use ancode::SyndromeFamily;
    ///
    /// // 9-bit words: 18 single-bit syndromes, matching the A = 19 code
    /// // of Figure 4 in the paper.
    /// let family = SyndromeFamily::SingleBit { width: 9 };
    /// assert_eq!(family.enumerate().len(), 18);
    /// ```
    pub fn enumerate(self) -> Vec<Syndrome> {
        let mut out = Vec::new();
        match self {
            SyndromeFamily::SingleBit { width } => {
                for bit in 0..width {
                    out.push(Syndrome::single(bit, 1));
                    out.push(Syndrome::single(bit, -1));
                }
            }
            SyndromeFamily::Burst2 { width } => {
                for bit in 0..width {
                    for delta in [1i8, -1] {
                        out.push(Syndrome::single(bit, delta));
                        out.push(Syndrome::single(bit, 2 * delta));
                        if bit + 1 < width {
                            out.push(Syndrome::new(vec![
                                SyndromeTerm::new(bit, delta),
                                SyndromeTerm::new(bit + 1, delta),
                            ]));
                        }
                    }
                }
                // ±2·2^i and ±2^{i+1} are the same additive error;
                // deduplicate by value so residue assignment sees each
                // syndrome once.
                out.sort_by(|a, b| {
                    a.value()
                        .cmp(&b.value())
                        .then_with(|| a.msb().cmp(&b.msb()))
                });
                out.dedup_by(|a, b| a.value() == b.value());
            }
            SyndromeFamily::CellRow {
                width,
                cell_bits,
                max_magnitude,
            } => {
                assert!(cell_bits >= 1, "cells hold at least one bit");
                let mut bit = 0;
                while bit < width {
                    for mag in 1..=max_magnitude as i8 {
                        out.push(Syndrome::single(bit, mag));
                        out.push(Syndrome::single(bit, -mag));
                    }
                    bit += cell_bits;
                }
            }
        }
        out
    }

    /// The number of syndromes in the family.
    pub fn len(self) -> usize {
        self.enumerate().len()
    }

    /// Whether the family is empty (zero-width words).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_value_signed() {
        assert_eq!(SyndromeTerm::new(3, 1).value().to_i128(), Some(8));
        assert_eq!(SyndromeTerm::new(3, -2).value().to_i128(), Some(-16));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_term_rejected() {
        SyndromeTerm::new(0, 0);
    }

    #[test]
    fn syndrome_value_sums_terms() {
        let s = Syndrome::new(vec![SyndromeTerm::new(0, 1), SyndromeTerm::new(3, 1)]);
        assert_eq!(s.value().to_i128(), Some(9));
        assert_eq!(s.msb(), 3);
    }

    #[test]
    fn syndrome_sorts_terms() {
        let s = Syndrome::new(vec![SyndromeTerm::new(5, 1), SyndromeTerm::new(2, -1)]);
        assert_eq!(s.terms()[0].bit, 2);
        assert_eq!(s.terms()[1].bit, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_bits_rejected() {
        Syndrome::new(vec![SyndromeTerm::new(2, 1), SyndromeTerm::new(2, -1)]);
    }

    #[test]
    fn negation_flips_value() {
        let s = Syndrome::new(vec![SyndromeTerm::new(0, 1), SyndromeTerm::new(4, -1)]);
        let n = s.negated();
        assert_eq!(n.value(), -s.value());
        assert_eq!(n.terms().len(), 2);
    }

    #[test]
    fn single_bit_family_counts() {
        // Matches the paper: 9-bit word → 18 syndromes (A=19 code);
        // 39-bit word → 78 syndromes (A=79 code).
        assert_eq!(SyndromeFamily::SingleBit { width: 9 }.len(), 18);
        assert_eq!(SyndromeFamily::SingleBit { width: 39 }.len(), 78);
        assert!(!SyndromeFamily::SingleBit { width: 9 }.is_empty());
        assert!(SyndromeFamily::SingleBit { width: 0 }.is_empty());
    }

    #[test]
    fn burst2_family_contains_magnitude_three() {
        let fam = SyndromeFamily::Burst2 { width: 4 };
        let values: Vec<i128> = fam
            .enumerate()
            .iter()
            .map(|s| s.value().to_i128().unwrap())
            .collect();
        // ±3·2^i = ±(2^i + 2^{i+1}).
        assert!(values.contains(&3));
        assert!(values.contains(&-3));
        assert!(values.contains(&6));
        assert!(values.contains(&2));
    }

    #[test]
    fn cell_row_family_hits_cell_boundaries_only() {
        let fam = SyndromeFamily::CellRow {
            width: 8,
            cell_bits: 2,
            max_magnitude: 3,
        };
        let syndromes = fam.enumerate();
        // 4 rows × 3 magnitudes × 2 signs.
        assert_eq!(syndromes.len(), 24);
        assert!(syndromes.iter().all(|s| s.terms()[0].bit % 2 == 0));
    }

    #[test]
    fn display_formats() {
        let s = Syndrome::new(vec![SyndromeTerm::new(1, -1), SyndromeTerm::new(4, 2)]);
        assert_eq!(s.to_string(), "-1·2^1 +2·2^4");
    }
}
