//! The full ABN encode / correct / detect pipeline.

use std::fmt;

use wideint::{I256, U256};

use crate::{AnCode, CodeError, CorrectionTable, Syndrome};

/// What to do when a decoded result fails the `B` detection check
/// (§VI-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CorrectionPolicy {
    /// Keep the attempted correction even though `B` flags it. This
    /// preserves throughput; the paper notes the corrected value can be
    /// *further* from the truth than the uncorrected one.
    KeepCorrected,
    /// Revert to the uncorrected value (the hardware stores a
    /// post-division-by-`B` syndrome to add back). This is the paper's
    /// default for the evaluated dynamic codes.
    #[default]
    Revert,
}

/// How a decode concluded.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DecodeStatus {
    /// The residue was zero and the `B` check passed: no error detected.
    Clean,
    /// A syndrome was found in the table and the corrected value passed
    /// the `B` check.
    Corrected(Syndrome),
    /// The residue was not in the correction table: a detected,
    /// uncorrectable error. The returned value is the rounded
    /// uncorrected estimate.
    Uncorrectable,
    /// A correction was applied but the `B` check failed, flagging a
    /// miscorrection; the returned value follows the
    /// [`CorrectionPolicy`].
    MiscorrectionDetected {
        /// The syndrome that was (wrongly) applied.
        attempted: Syndrome,
    },
    /// The residue was zero but the `B` check failed: the error was an
    /// exact multiple of `A`, caught only by `B`.
    SilentAError,
}

impl DecodeStatus {
    /// Whether a correction was applied and believed good.
    pub fn was_corrected(&self) -> bool {
        matches!(self, DecodeStatus::Corrected(_))
    }

    /// Whether the decoder believes the returned value is exact.
    pub fn is_trusted(&self) -> bool {
        matches!(self, DecodeStatus::Clean | DecodeStatus::Corrected(_))
    }
}

impl fmt::Display for DecodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStatus::Clean => write!(f, "clean"),
            DecodeStatus::Corrected(s) => write!(f, "corrected ({s})"),
            DecodeStatus::Uncorrectable => write!(f, "uncorrectable"),
            DecodeStatus::MiscorrectionDetected { attempted } => {
                write!(f, "miscorrection detected (attempted {attempted})")
            }
            DecodeStatus::SilentAError => write!(f, "error multiple of A, caught by B"),
        }
    }
}

/// The result of decoding one computation output.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// The recovered data value (best effort when untrusted). Signed
    /// because an applied correction can push the estimate negative.
    pub value: I256,
    /// How the decode concluded.
    pub status: DecodeStatus,
}

/// How a decode concluded, without the applied syndrome.
///
/// The allocation-free counterpart of [`DecodeStatus`]: hot loops that
/// only need to *count* outcomes (the ECU statistics of Figure 9) use
/// [`AbnCode::decode_value`], which returns this `Copy` summary instead
/// of cloning the corrected [`Syndrome`] into a [`DecodeStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DecodeKind {
    /// Residue zero, `B` check passed.
    Clean,
    /// Table hit, corrected value passed the `B` check.
    Corrected,
    /// Residue absent from the correction table.
    Uncorrectable,
    /// Correction applied but flagged by the `B` check.
    Miscorrected,
    /// Error was an exact multiple of `A`, caught only by `B`.
    SilentA,
}

impl DecodeKind {
    /// Whether the decoder believes the value is exact (mirrors
    /// [`DecodeStatus::is_trusted`]).
    pub fn is_trusted(self) -> bool {
        matches!(self, DecodeKind::Clean | DecodeKind::Corrected)
    }
}

/// An ABN arithmetic code: correction with `A`, detection with `B`.
///
/// Data is encoded by multiplication with `A·B`. Decoding computes the
/// residue modulo `A`, looks it up in the [`CorrectionTable`], applies
/// the stored syndrome, and then uses divisibility by `B` to validate the
/// result — `B` plays the role of SECDED's extra parity bit.
///
/// # Examples
///
/// Correcting the Figure 4 scenario with detection:
///
/// ```
/// use ancode::{AbnCode, CorrectionPolicy, DecodeStatus};
/// use wideint::U256;
///
/// let code = AbnCode::classic(19, 3, 5)?;
/// let clean = code.encode(U256::from(26u64))?;
///
/// // No error.
/// let ok = code.decode(clean.into(), CorrectionPolicy::Revert);
/// assert_eq!(ok.status, DecodeStatus::Clean);
/// assert_eq!(ok.value.to_i128(), Some(26));
///
/// // Single-bit error: corrected.
/// let bad = clean + U256::from(4u64);
/// let fixed = code.decode(bad.into(), CorrectionPolicy::Revert);
/// assert!(fixed.status.was_corrected());
/// assert_eq!(fixed.value.to_i128(), Some(26));
/// # Ok::<(), ancode::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AbnCode {
    an: AnCode,
    b: u64,
    table: CorrectionTable,
    data_bits: u32,
    /// Dense residue-indexed cache of each table entry's syndrome value,
    /// so the decode hot path reads one `Copy` value instead of chasing
    /// the `TableEntry` and re-deriving the correction from its terms.
    syndrome_values: Vec<Option<I256>>,
}

/// Returns whether `n` is prime (trial division; `n` is always small).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl AbnCode {
    /// Creates an ABN code from an explicit correction table.
    ///
    /// # Errors
    ///
    /// - [`CodeError::InvalidA`] if `a` is invalid or differs from the
    ///   table's modulus.
    /// - [`CodeError::InvalidB`] if `b` is not a prime coprime with `a`.
    pub fn from_table(
        a: u64,
        b: u64,
        table: CorrectionTable,
        data_bits: u32,
    ) -> Result<AbnCode, CodeError> {
        let an = AnCode::new(a)?;
        if table.a() != a {
            return Err(CodeError::InvalidA(table.a()));
        }
        if !is_prime(b) || gcd(a, b) != 1 {
            return Err(CodeError::InvalidB { a, b });
        }
        let syndrome_values = (0..a)
            .map(|residue| table.lookup(residue).map(|entry| entry.syndrome.value()))
            .collect();
        Ok(AbnCode {
            an,
            b,
            table,
            data_bits,
            syndrome_values,
        })
    }

    /// Creates a classic (data-oblivious) ABN code correcting single-bit
    /// errors from bit 0 upward, as many as `a` can distinguish.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbnCode::from_table`].
    pub fn classic(a: u64, b: u64, data_bits: u32) -> Result<AbnCode, CodeError> {
        let an = AnCode::new(a)?;
        let width = data_bits + check_bits(a, b);
        let table = CorrectionTable::for_single_bit_prefix(&an, width);
        AbnCode::from_table(a, b, table, data_bits)
    }

    /// The correction multiplier `A`.
    pub fn a(&self) -> u64 {
        self.an.a()
    }

    /// The detection multiplier `B`.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// The combined multiplier `A·B` applied at encode time.
    pub fn multiplier(&self) -> u64 {
        self.an.a() * self.b
    }

    /// The data width the code protects.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Total check bits added by encoding: `ceil(log2(A·B))`.
    pub fn check_bits(&self) -> u32 {
        check_bits(self.an.a(), self.b)
    }

    /// Width of the encoded word in bits.
    pub fn coded_bits(&self) -> u32 {
        self.data_bits + self.check_bits()
    }

    /// The correction table.
    pub fn table(&self) -> &CorrectionTable {
        &self.table
    }

    /// Encodes `x` as `A·B·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::OperandTooWide`] if `x` exceeds the data
    /// width, or [`CodeError::Overflow`] if the encoded value would not
    /// fit in 256 bits.
    pub fn encode(&self, x: U256) -> Result<U256, CodeError> {
        if x.bits() > self.data_bits {
            return Err(CodeError::OperandTooWide {
                required: x.bits(),
                available: self.data_bits,
            });
        }
        x.checked_mul_u64(self.multiplier())
            .ok_or(CodeError::Overflow)
    }

    /// Decodes a computation result, correcting with `A` and validating
    /// with `B`.
    ///
    /// The input is signed: analog outputs are non-negative, but callers
    /// may feed back partially corrected values.
    ///
    /// Returns the full [`DecodeOutcome`], including the applied
    /// [`Syndrome`] for corrected and miscorrected results; hot loops
    /// that only tally outcomes should prefer the allocation-free
    /// [`AbnCode::decode_value`].
    pub fn decode(&self, observed: I256, policy: CorrectionPolicy) -> DecodeOutcome {
        let (value, kind) = self.decode_value(observed, policy);
        let status = match kind {
            DecodeKind::Clean => DecodeStatus::Clean,
            DecodeKind::SilentA => DecodeStatus::SilentAError,
            DecodeKind::Uncorrectable => DecodeStatus::Uncorrectable,
            DecodeKind::Corrected | DecodeKind::Miscorrected => {
                let a = self.an.a();
                let residue = observed.rem_euclid_u64(a).expect("A is nonzero");
                let entry = self
                    .table
                    .lookup(residue)
                    .expect("decode_value applied a table entry");
                if kind == DecodeKind::Corrected {
                    DecodeStatus::Corrected(entry.syndrome.clone())
                } else {
                    DecodeStatus::MiscorrectionDetected {
                        attempted: entry.syndrome.clone(),
                    }
                }
            }
        };
        DecodeOutcome { value, status }
    }

    /// Decodes a computation result without materialising the applied
    /// [`Syndrome`].
    ///
    /// Semantically identical to [`AbnCode::decode`] — same value, and a
    /// [`DecodeKind`] mirroring the corresponding [`DecodeStatus`] — but
    /// heap-allocation-free: the correction comes from a dense
    /// residue-indexed cache of syndrome values built at construction.
    /// This is the entry point the accelerator's decode loop uses.
    ///
    /// # Examples
    ///
    /// ```
    /// use ancode::{AbnCode, CorrectionPolicy, DecodeKind};
    /// use wideint::{I256, U256};
    ///
    /// let code = AbnCode::classic(19, 3, 5)?;
    /// let clean = code.encode(U256::from(26u64))?;
    ///
    /// let (value, kind) = code.decode_value(
    ///     I256::from(clean + U256::from(4u64)),
    ///     CorrectionPolicy::Revert,
    /// );
    /// assert_eq!(kind, DecodeKind::Corrected);
    /// assert!(kind.is_trusted());
    /// assert_eq!(value.to_i128(), Some(26));
    /// # Ok::<(), ancode::CodeError>(())
    /// ```
    pub fn decode_value(&self, observed: I256, policy: CorrectionPolicy) -> (I256, DecodeKind) {
        let a = self.an.a();
        let residue = observed.rem_euclid_u64(a).expect("A is nonzero");

        if residue == 0 {
            // Divisible by A. B validates that the error was not a
            // multiple of A.
            let q = observed.div_exact_u64(a).expect("residue checked zero");
            return match q.div_exact_u64(self.b) {
                Some(value) => (value, DecodeKind::Clean),
                None => (self.best_effort(observed), DecodeKind::SilentA),
            };
        }

        match self.syndrome_values[residue as usize] {
            Some(syndrome) => {
                let corrected = observed - syndrome;
                let q = corrected
                    .div_exact_u64(a)
                    .expect("syndrome residue matches by construction");
                match q.div_exact_u64(self.b) {
                    Some(value) => (value, DecodeKind::Corrected),
                    None => {
                        let value = match policy {
                            CorrectionPolicy::KeepCorrected => self.best_effort(corrected),
                            CorrectionPolicy::Revert => self.best_effort(observed),
                        };
                        (value, DecodeKind::Miscorrected)
                    }
                }
            }
            None => (self.best_effort(observed), DecodeKind::Uncorrectable),
        }
    }

    /// Rounded division by `A·B`: the best unprotected estimate of the
    /// data value.
    fn best_effort(&self, n: I256) -> I256 {
        n.div_round_u64(self.multiplier())
            .expect("multiplier is nonzero")
    }
}

/// Check bits consumed by multiplying with `a·b`: the bit-width growth
/// `ceil(log2(a·b))` of the encoded operand.
pub(crate) fn check_bits(a: u64, b: u64) -> u32 {
    let m = a * b;
    64 - (m - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyndromeTerm;

    fn code19() -> AbnCode {
        AbnCode::classic(19, 3, 5).unwrap()
    }

    #[test]
    fn construction_validates_b() {
        assert!(matches!(
            AbnCode::classic(19, 4, 5),
            Err(CodeError::InvalidB { .. })
        ));
        // B sharing a factor with A is rejected.
        assert!(matches!(
            AbnCode::classic(9, 3, 5),
            Err(CodeError::InvalidB { .. })
        ));
        assert!(AbnCode::classic(19, 3, 5).is_ok());
    }

    #[test]
    fn multiplier_and_widths() {
        let code = code19();
        assert_eq!(code.multiplier(), 57);
        assert_eq!(code.check_bits(), 6); // 57 ≤ 64 = 2^6
        assert_eq!(code.data_bits(), 5);
        assert_eq!(code.coded_bits(), 11);
    }

    #[test]
    fn encode_rejects_wide_operands() {
        let code = code19();
        assert!(matches!(
            code.encode(U256::from(32u64)),
            Err(CodeError::OperandTooWide { .. })
        ));
        assert!(code.encode(U256::from(31u64)).is_ok());
    }

    #[test]
    fn clean_roundtrip() {
        let code = code19();
        for x in 0u64..32 {
            let e = code.encode(U256::from(x)).unwrap();
            let out = code.decode(e.into(), CorrectionPolicy::Revert);
            assert_eq!(out.status, DecodeStatus::Clean);
            assert_eq!(out.value.to_i128(), Some(x as i128));
            assert!(out.status.is_trusted());
        }
    }

    #[test]
    fn corrects_all_single_bit_errors_in_prefix() {
        let code = code19();
        let clean = code.encode(U256::from(26u64)).unwrap();
        for bit in 0..9 {
            for delta in [1i8, -1] {
                let error = Syndrome::single(bit, delta).value();
                let observed = I256::from(clean) + error;
                let out = code.decode(observed, CorrectionPolicy::Revert);
                assert!(
                    out.status.was_corrected(),
                    "bit {bit} delta {delta}: {:?}",
                    out.status
                );
                assert_eq!(out.value.to_i128(), Some(26));
            }
        }
    }

    #[test]
    fn detects_error_multiple_of_a() {
        // An additive error of exactly A·k (not A·B·k) slips past the
        // residue check but is caught by B.
        let code = code19();
        let clean = code.encode(U256::from(10u64)).unwrap();
        let observed = I256::from(clean) + I256::from_i128(19);
        let out = code.decode(observed, CorrectionPolicy::Revert);
        assert_eq!(out.status, DecodeStatus::SilentAError);
        assert!(!out.status.is_trusted());
        // Best effort still lands on the right value: 19/57 rounds to 0.
        assert_eq!(out.value.to_i128(), Some(10));
    }

    #[test]
    fn uncorrectable_residue_reported() {
        // Build a code whose table covers only bit 0, then inject an
        // error at a residue outside the table.
        let an = AnCode::new(19).unwrap();
        let table = CorrectionTable::for_single_bit_prefix(&an, 1);
        let code = AbnCode::from_table(19, 3, table, 5).unwrap();
        let clean = code.encode(U256::from(7u64)).unwrap();
        let observed = I256::from(clean) + I256::from_i128(8); // residue 8 absent
        let out = code.decode(observed, CorrectionPolicy::Revert);
        assert_eq!(out.status, DecodeStatus::Uncorrectable);
        assert_eq!(out.value.to_i128(), Some(7)); // 8/57 rounds to 0
    }

    #[test]
    fn miscorrection_policies_differ() {
        // A 2-term error whose residue aliases a single-bit table entry,
        // with the alias failing the B check.
        let code = code19();
        let clean = code.encode(U256::from(26u64)).unwrap();
        // Find an error that produces MiscorrectionDetected.
        let mut found = false;
        'outer: for hi in 9..11 {
            for lo in 0..3 {
                let e = Syndrome::new(vec![
                    SyndromeTerm::new(lo, 1),
                    SyndromeTerm::new(hi, 1),
                ]);
                let observed = I256::from(clean) + e.value();
                let keep = code.decode(observed, CorrectionPolicy::KeepCorrected);
                if let DecodeStatus::MiscorrectionDetected { .. } = keep.status {
                    let revert = code.decode(observed, CorrectionPolicy::Revert);
                    assert!(matches!(
                        revert.status,
                        DecodeStatus::MiscorrectionDetected { .. }
                    ));
                    // Revert estimates from the raw observed value.
                    let expected = observed.div_round_u64(57).unwrap();
                    assert_eq!(revert.value, expected);
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no miscorrection scenario found");
    }

    #[test]
    fn paper_miscorrection_example_a79() {
        // §V-A: A = 79 (no B), value 1024 → 80896; syndrome 9 = 2^0 + 2^3
        // decodes to −12249, further from the truth than the raw value.
        let an = AnCode::new(79).unwrap();
        let width = 32 + 7;
        let table = CorrectionTable::for_single_bit_prefix(&an, width);
        let observed = I256::from_i128(80896 + 9);
        let residue = observed.rem_euclid_u64(79).unwrap();
        let entry = table.lookup(residue).expect("aliased entry exists");
        let corrected = observed - entry.syndrome.value();
        let decoded = corrected.div_exact_u64(79).unwrap();
        assert_eq!(decoded.to_i128(), Some(-12249));
    }

    #[test]
    fn negative_observed_values_decode() {
        let code = code19();
        let out = code.decode(I256::from_i128(-57), CorrectionPolicy::Revert);
        assert_eq!(out.status, DecodeStatus::Clean);
        assert_eq!(out.value.to_i128(), Some(-1));
    }

    #[test]
    fn status_display() {
        assert_eq!(DecodeStatus::Clean.to_string(), "clean");
        assert!(DecodeStatus::Uncorrectable.to_string().contains("uncorrectable"));
    }

    #[test]
    fn check_bits_examples() {
        assert_eq!(check_bits(19, 3), 6); // 57
        assert_eq!(check_bits(79, 1), 7); // 79 — plain AN
        assert_eq!(check_bits(3, 1), 2);
    }
}
