//! Decoder transition probabilities: where an additive error lands.
//!
//! The ECU's decode outcome is a *deterministic* function of the additive
//! error `e` alone, independent of the stored data: encoding multiplies
//! by `A·B`, so `observed = A·B·x + e` and every step of the decode —
//! residue modulo `A`, table lookup, divisibility by `B` — sees only the
//! congruence class of `e`. This module exposes that function directly
//! ([`classify`]) and aggregates it over a weighted error distribution
//! ([`transition_distribution`]), which is what the analytic fast path
//! (`accel::analytic`) uses to predict per-cycle decode statistics
//! without Monte-Carlo sampling.
//!
//! The delta returned for rounding outcomes (`Uncorrectable`,
//! `Miscorrected`, `SilentA`) uses the same `div_round_u64` the ECU's
//! best-effort path uses. Rounding of `(A·B·x + e) / (A·B)` separates
//! into `x + round(e / (A·B))` whenever `e` is not exactly half of
//! `A·B` modulo `A·B` — a tie is impossible for the codes in use, since
//! `A` is odd and the error magnitudes are powers of two — so the delta
//! really is data-independent.
//!
//! # Examples
//!
//! A single-bit error is corrected (delta zero); an error that is itself
//! a multiple of `A·B` passes every check and lands *silently* in the
//! decoded value:
//!
//! ```
//! use ancode::{transition, AbnCode, CorrectionPolicy, DecodeKind};
//! use wideint::I256;
//!
//! let code = AbnCode::classic(19, 3, 5)?;
//!
//! let fixed = transition::classify(&code, CorrectionPolicy::Revert, I256::from_i128(4));
//! assert_eq!(fixed.kind, DecodeKind::Corrected);
//! assert_eq!(fixed.delta.to_i128(), Some(0));
//!
//! // e = A·B = 57: divisible by both A and B — an undetectable error
//! // that shifts the decoded value by exactly 1.
//! let silent = transition::classify(&code, CorrectionPolicy::Revert, I256::from_i128(57));
//! assert_eq!(silent.kind, DecodeKind::Clean);
//! assert_eq!(silent.delta.to_i128(), Some(1));
//! # Ok::<(), ancode::CodeError>(())
//! ```

use wideint::I256;

use crate::abn::{AbnCode, CorrectionPolicy, DecodeKind};

/// The decode outcome induced by one additive error value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// How the ECU classifies the error.
    pub kind: DecodeKind,
    /// The shift of the decoded data value relative to an error-free
    /// decode (zero exactly when the error was fully corrected).
    pub delta: I256,
}

/// Classifies an additive error `e` through the full decode pipeline
/// (residue → table → correction → `B` validation) and returns the
/// resulting [`DecodeKind`] together with the decoded-value delta.
///
/// Exactness rather than re-derivation: the classification *is*
/// [`AbnCode::decode_value`] applied to `e` (an encode of zero plus the
/// error), so it can never drift from the ECU it predicts.
pub fn classify(code: &AbnCode, policy: CorrectionPolicy, e: I256) -> Transition {
    let (delta, kind) = code.decode_value(e, policy);
    Transition { kind, delta }
}

/// Probability-weighted decode-outcome distribution over a set of
/// additive error events, plus the first two moments of the
/// decoded-value delta.
///
/// Event probabilities need not sum to one: the complement is implicitly
/// the error-free event (`e = 0`, a clean decode with zero delta), so
/// callers can pass only the enumerated error events.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransitionDist {
    /// Probability of a clean decode — including the silent case where
    /// `e` is a nonzero multiple of `A·B` (its delta still contributes
    /// to the moments).
    pub p_clean: f64,
    /// Probability the table correction restores the exact value.
    pub p_corrected: f64,
    /// Probability of a table miss (detected, best-effort value).
    pub p_uncorrectable: f64,
    /// Probability of a detected miscorrection (`B` check failed).
    pub p_miscorrected: f64,
    /// Probability the error was a silent multiple of `A` only.
    pub p_silent_a: f64,
    /// Expected decoded-value delta.
    pub mean_delta: f64,
    /// Expected squared decoded-value delta (second raw moment).
    pub delta_second_moment: f64,
}

impl TransitionDist {
    /// Probability the decode is *trusted* (clean or corrected) — the
    /// retry predicate of the engine's decode loop.
    pub fn p_trusted(&self) -> f64 {
        self.p_clean + self.p_corrected
    }
}

/// Aggregates [`classify`] over weighted error events.
///
/// Each event is `(e, p)`: an additive error value with its occurrence
/// probability. Deltas wider than 128 bits are saturated (they indicate
/// an unusable computation, exactly as the ECU's best-effort fold does).
///
/// # Examples
///
/// ```
/// use ancode::{transition, AbnCode, CorrectionPolicy};
///
/// let code = AbnCode::classic(19, 3, 5)?;
/// // Bit 2 flips up with probability 1e-3, down with 5e-4.
/// let dist = transition::transition_distribution(
///     &code,
///     CorrectionPolicy::Revert,
///     &[(4, 1e-3), (-4, 5e-4)],
/// );
/// // Both syndromes are in the single-bit table: corrected, no residual.
/// assert!((dist.p_corrected - 1.5e-3).abs() < 1e-12);
/// assert_eq!(dist.mean_delta, 0.0);
/// # Ok::<(), ancode::CodeError>(())
/// ```
pub fn transition_distribution(
    code: &AbnCode,
    policy: CorrectionPolicy,
    events: &[(i128, f64)],
) -> TransitionDist {
    let mut dist = TransitionDist::default();
    for &(e, p) in events {
        // lint: allow(float_eq, exact zero sentinel: callers pass literal 0.0 to mark absent events)
        if p == 0.0 {
            continue;
        }
        let t = classify(code, policy, I256::from_i128(e));
        match t.kind {
            DecodeKind::Clean => dist.p_clean += p,
            DecodeKind::Corrected => dist.p_corrected += p,
            DecodeKind::Uncorrectable => dist.p_uncorrectable += p,
            DecodeKind::Miscorrected => dist.p_miscorrected += p,
            DecodeKind::SilentA => dist.p_silent_a += p,
        }
        let delta = t.delta.to_i128().unwrap_or(if t.delta.is_negative() {
            i128::MIN / 2
        } else {
            i128::MAX / 2
        // lint: allow(lossy_cast, saturated i128 delta to f64 for moment accumulation; precision loss beyond 2^53 is acceptable here)
        }) as f64;
        dist.mean_delta += p * delta;
        dist.delta_second_moment += p * delta * delta;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideint::U256;

    fn code19() -> AbnCode {
        AbnCode::classic(19, 3, 5).unwrap()
    }

    #[test]
    fn classify_matches_decode_on_real_operands() {
        // The data-independence claim, checked exhaustively: for every
        // operand x and every error in a wide window, decode(encode(x)+e)
        // equals x + classify(e).delta with the same kind.
        let code = code19();
        for policy in [CorrectionPolicy::Revert, CorrectionPolicy::KeepCorrected] {
            for x in [0u64, 1, 7, 26, 31] {
                let encoded = code.encode(U256::from(x)).unwrap();
                for e in -200i128..=200 {
                    let observed = I256::from(encoded) + I256::from_i128(e);
                    let (value, kind) = code.decode_value(observed, policy);
                    let t = classify(&code, policy, I256::from_i128(e));
                    assert_eq!(kind, t.kind, "x={x} e={e} {policy:?}");
                    assert_eq!(
                        value.to_i128().unwrap(),
                        x as i128 + t.delta.to_i128().unwrap(),
                        "x={x} e={e} {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn distribution_tallies_each_kind_once() {
        let code = code19();
        // 4: corrected; 57 = A·B: silent clean; 19: multiple of A only
        // (silent-A); pick an error with a residue outside the table for
        // uncorrectable coverage if one exists in the window.
        let events = [(4i128, 0.25), (57, 0.125), (19, 0.0625)];
        let dist = transition_distribution(&code, CorrectionPolicy::Revert, &events);
        assert!((dist.p_corrected - 0.25).abs() < 1e-15);
        assert!((dist.p_clean - 0.125).abs() < 1e-15);
        assert!((dist.p_silent_a - 0.0625).abs() < 1e-15);
        // Mean delta: corrected contributes 0; 57/57 = 1 at 0.125;
        // round(19/57) = 0 at 0.0625.
        assert!((dist.mean_delta - 0.125).abs() < 1e-15);
        assert!(dist.p_trusted() > 0.3);
    }

    #[test]
    fn zero_probability_events_are_skipped() {
        let code = code19();
        let dist = transition_distribution(&code, CorrectionPolicy::Revert, &[(4, 0.0)]);
        assert_eq!(dist, TransitionDist::default());
    }
}
