//! Residue → syndrome correction tables.

use std::fmt;

use crate::{AnCode, CodeError, Syndrome};

/// Which half of a split correction table an entry belongs to (§V-B1 of
/// the paper).
///
/// When an array contains stuck-at faults, the table is split: one half
/// corrects combinations that include the (deterministic) stuck-cell
/// error, the other corrects ordinary transient combinations that occur
/// when the stuck cell is not being driven by the input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum TableHalf {
    /// Transient (RTN/noise) errors only.
    #[default]
    Transient,
    /// Combinations that include a stuck-at fault contribution.
    StuckAware,
}

/// One correction-table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// The syndrome to subtract from an erroneous result.
    pub syndrome: Syndrome,
    /// Estimated probability of this error event (used for capability
    /// accounting; 0 for statically allocated entries).
    pub probability: f64,
    /// Which half of a split table the entry occupies.
    pub half: TableHalf,
}

/// A direct-indexed table mapping residues modulo `A` to correction
/// syndromes.
///
/// The hardware realization is an SRAM with `A` entries indexed by the
/// output of the divide-by-`A` residue unit (Figure 9 of the paper); this
/// type mirrors that: index 0 is reserved for "no error" and every other
/// index optionally holds a syndrome.
///
/// # Examples
///
/// ```
/// use ancode::{AnCode, CorrectionTable, Syndrome, SyndromeFamily};
///
/// let code = AnCode::new(19)?;
/// let table = CorrectionTable::for_family(&code, SyndromeFamily::SingleBit { width: 9 })?;
/// // +2^1 has residue 2 under A = 19 — Figure 4's example error.
/// let entry = table.lookup(2).unwrap();
/// assert_eq!(entry.syndrome.value().to_i128(), Some(2));
/// # Ok::<(), ancode::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionTable {
    a: u64,
    entries: Vec<Option<TableEntry>>,
}

impl CorrectionTable {
    /// Creates an empty table for residues modulo `a`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidA`] if `a` is not a valid AN
    /// multiplier.
    pub fn new(a: u64) -> Result<CorrectionTable, CodeError> {
        let code = AnCode::new(a)?;
        Ok(CorrectionTable {
            a: code.a(),
            entries: vec![None; a as usize],
        })
    }

    /// Builds a table covering an entire static syndrome family.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ResidueCollision`] if the family does not
    /// have unique nonzero residues under `code.a()`.
    pub fn for_family(
        code: &AnCode,
        family: crate::SyndromeFamily,
    ) -> Result<CorrectionTable, CodeError> {
        let mut table = CorrectionTable::new(code.a())?;
        for (residue, syndrome) in code.assign_residues(family)? {
            table.entries[residue as usize] = Some(TableEntry {
                syndrome,
                probability: 0.0,
                half: TableHalf::Transient,
            });
        }
        Ok(table)
    }

    /// Builds a table covering as many single-bit positions as fit,
    /// starting from bit 0, stopping at the first residue collision.
    ///
    /// Static codes sized for an operand narrower than the full coded
    /// width (e.g. `A = 19` protecting 9 of 11 coded bits) use this
    /// greedy prefix construction.
    pub fn for_single_bit_prefix(code: &AnCode, width: u32) -> CorrectionTable {
        let mut table = CorrectionTable::new(code.a()).expect("A comes from a valid AnCode");
        'bits: for bit in 0..width {
            for delta in [1i8, -1] {
                let syndrome = Syndrome::single(bit, delta);
                if table.try_insert(code, syndrome, 0.0, TableHalf::Transient).is_err() {
                    break 'bits;
                }
            }
        }
        table
    }

    /// Builds a static table over per-physical-row quantization errors
    /// for `cell_bits`-bit cells, greedily from the least significant
    /// row upward.
    ///
    /// For each row (bit positions `0, c, 2c, …` below `width`), the
    /// syndromes `±1·2^{rc}` are inserted first for every row, then
    /// larger magnitudes up to `±(2^c − 1)`, stopping silently when a
    /// residue collides or capacity runs out. This is the
    /// "correct an error at exactly one bit position" construction the
    /// paper's static codes use, generalized to multi-bit cells.
    pub fn for_cell_rows(code: &AnCode, width: u32, cell_bits: u32) -> CorrectionTable {
        assert!(cell_bits >= 1, "cells hold at least one bit");
        let mut table = CorrectionTable::new(code.a()).expect("A comes from a valid AnCode");
        let max_mag = ((1u32 << cell_bits.min(7)) - 1) as i8;
        'mags: for mag in 1..=max_mag {
            let mut bit = 0;
            while bit < width {
                for delta in [mag, -mag] {
                    let syndrome = Syndrome::single(bit, delta);
                    if table.capacity_remaining() == 0 {
                        break 'mags;
                    }
                    // Collisions at higher magnitudes are expected; keep
                    // whatever fits.
                    let _ = table.try_insert(code, syndrome, 0.0, TableHalf::Transient);
                }
                bit += cell_bits;
            }
        }
        table
    }

    /// The modulus `A`.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of free (correctable-assignable) residue slots remaining.
    ///
    /// Residue 0 is never assignable — it means "no error".
    pub fn capacity_remaining(&self) -> usize {
        self.a as usize - 1 - self.len()
    }

    /// Attempts to insert a syndrome; fails if its residue is zero or
    /// already taken.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ResidueCollision`] on conflict, leaving the
    /// table unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use ancode::{AnCode, CorrectionTable, Syndrome, TableHalf};
    ///
    /// let code = AnCode::new(19)?;
    /// let mut table = CorrectionTable::new(19)?;
    /// // +2^0 has residue 1 under A = 19.
    /// let residue = table.try_insert(&code, Syndrome::single(0, 1), 0.5, TableHalf::Transient)?;
    /// assert_eq!(residue, 1);
    /// // A second syndrome with the same residue is rejected and the
    /// // table is left unchanged.
    /// assert!(table.try_insert(&code, Syndrome::single(0, 1), 0.5, TableHalf::Transient).is_err());
    /// assert_eq!(table.len(), 1);
    /// assert_eq!(table.lookup(1).unwrap().probability, 0.5);
    /// # Ok::<(), ancode::CodeError>(())
    /// ```
    pub fn try_insert(
        &mut self,
        code: &AnCode,
        syndrome: Syndrome,
        probability: f64,
        half: TableHalf,
    ) -> Result<u64, CodeError> {
        debug_assert_eq!(code.a(), self.a, "table and code must share A");
        let residue = code.residue(syndrome.value());
        if residue == 0 || self.entries[residue as usize].is_some() {
            return Err(CodeError::ResidueCollision { a: self.a, residue });
        }
        self.entries[residue as usize] = Some(TableEntry {
            syndrome,
            probability,
            half,
        });
        Ok(residue)
    }

    /// Looks up the entry for a nonzero residue.
    ///
    /// Returns `None` for unoccupied residues (a detected but
    /// uncorrectable error) and for residue 0.
    pub fn lookup(&self, residue: u64) -> Option<&TableEntry> {
        if residue == 0 || residue >= self.a {
            return None;
        }
        self.entries[residue as usize].as_ref()
    }

    /// Iterates over `(residue, entry)` pairs in residue order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TableEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(r, e)| e.as_ref().map(|e| (r as u64, e)))
    }

    /// Sum of the probabilities of all stored entries: the "correction
    /// capability" score used to rank candidate `A` values (§V-B4).
    pub fn covered_probability(&self) -> f64 {
        self.iter().map(|(_, e)| e.probability).sum()
    }

    /// The number of entries in each half of a split table.
    pub fn half_sizes(&self) -> (usize, usize) {
        let mut transient = 0;
        let mut stuck = 0;
        for (_, e) in self.iter() {
            match e.half {
                TableHalf::Transient => transient += 1,
                TableHalf::StuckAware => stuck += 1,
            }
        }
        (transient, stuck)
    }
}

impl fmt::Display for CorrectionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "correction table, A = {} ({} entries)", self.a, self.len())?;
        for (r, e) in self.iter() {
            writeln!(f, "  {:>6} -> {}", r, e.syndrome)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyndromeFamily;

    #[test]
    fn full_family_table_a19() {
        let code = AnCode::new(19).unwrap();
        let table =
            CorrectionTable::for_family(&code, SyndromeFamily::SingleBit { width: 9 }).unwrap();
        assert_eq!(table.len(), 18);
        assert_eq!(table.capacity_remaining(), 0);
        assert!(!table.is_empty());
        // Every nonzero residue is occupied (A = 19 wastes nothing).
        for r in 1..19 {
            assert!(table.lookup(r).is_some(), "residue {r}");
        }
        assert!(table.lookup(0).is_none());
        assert!(table.lookup(19).is_none());
    }

    #[test]
    fn family_collision_reported() {
        let code = AnCode::new(19).unwrap();
        let err = CorrectionTable::for_family(&code, SyndromeFamily::SingleBit { width: 10 });
        assert!(matches!(err, Err(CodeError::ResidueCollision { a: 19, .. })));
    }

    #[test]
    fn prefix_table_stops_at_collision() {
        let code = AnCode::new(19).unwrap();
        let table = CorrectionTable::for_single_bit_prefix(&code, 16);
        // Exactly the 9 correctable positions survive.
        assert_eq!(table.len(), 18);
    }

    #[test]
    fn insert_rejects_duplicate_residue() {
        let code = AnCode::new(19).unwrap();
        let mut table = CorrectionTable::new(19).unwrap();
        table
            .try_insert(&code, Syndrome::single(1, 1), 0.1, TableHalf::Transient)
            .unwrap();
        // +2^1 and -(2^9 - ... ) pick something with residue 2: 21 ≡ 2.
        let dup = Syndrome::new(vec![
            crate::SyndromeTerm::new(0, 1),
            crate::SyndromeTerm::new(2, 1),
            crate::SyndromeTerm::new(4, 1),
        ]); // 1 + 4 + 16 = 21 ≡ 2 (mod 19)
        assert!(table
            .try_insert(&code, dup, 0.05, TableHalf::Transient)
            .is_err());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn insert_rejects_zero_residue() {
        let code = AnCode::new(19).unwrap();
        let mut table = CorrectionTable::new(19).unwrap();
        // 19 = 16 + 2 + 1 ≡ 0 (mod 19).
        let s = Syndrome::new(vec![
            crate::SyndromeTerm::new(0, 1),
            crate::SyndromeTerm::new(1, 1),
            crate::SyndromeTerm::new(4, 1),
        ]);
        assert!(table.try_insert(&code, s, 0.5, TableHalf::Transient).is_err());
    }

    #[test]
    fn covered_probability_sums() {
        let code = AnCode::new(19).unwrap();
        let mut table = CorrectionTable::new(19).unwrap();
        table
            .try_insert(&code, Syndrome::single(0, 1), 0.25, TableHalf::Transient)
            .unwrap();
        table
            .try_insert(&code, Syndrome::single(1, 1), 0.5, TableHalf::StuckAware)
            .unwrap();
        assert!((table.covered_probability() - 0.75).abs() < 1e-12);
        assert_eq!(table.half_sizes(), (1, 1));
    }

    #[test]
    fn cell_row_table_covers_rows_first() {
        // A = 47 over 24-bit words with 2-bit cells: 12 rows, 24 ±1
        // syndromes, all fit with room for some ±2/±3.
        let code = AnCode::new(47).unwrap();
        let table = CorrectionTable::for_cell_rows(&code, 24, 2);
        for row in 0..12u32 {
            let r_pos = code.residue(Syndrome::single(row * 2, 1).value());
            assert!(table.lookup(r_pos).is_some(), "row {row} +1 missing");
        }
        assert!(table.len() >= 24);
        assert!(table.len() <= 46);
    }

    #[test]
    fn cell_row_table_single_bit_matches_prefix() {
        // With 1-bit cells and ample A, cell-row reduces to single-bit.
        let code = AnCode::new(19).unwrap();
        let a = CorrectionTable::for_cell_rows(&code, 9, 1);
        let b = CorrectionTable::for_single_bit_prefix(&code, 9);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn display_lists_entries() {
        let code = AnCode::new(19).unwrap();
        let table = CorrectionTable::for_single_bit_prefix(&code, 2);
        let text = table.to_string();
        assert!(text.contains("A = 19"));
        assert!(text.contains("+1·2^0"));
    }
}
