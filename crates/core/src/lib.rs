//! AN and data-aware ABN arithmetic error-correcting codes for in-situ
//! analog matrix-vector multiplication.
//!
//! This crate implements the primary contribution of *Making Memristive
//! Neural Network Accelerators Reliable* (Feinberg, Wang, Ipek — HPCA
//! 2018): arithmetic error-correcting codes that protect dot-product
//! computations performed *inside* a memristive crossbar, where
//! conventional SECDED ECC cannot be applied because Hamming codes do not
//! conserve addition.
//!
//! # How the codes work
//!
//! An **AN code** encodes an operand `x` by multiplying it with a constant
//! `A`. Because multiplication distributes over addition
//! (`A·x + A·y = A·(x + y)`), any number of encoded operands can be summed
//! — in the analog domain, by Kirchhoff's current law — and the result is
//! still a code word. Errors that occur during the computation manifest as
//! *additive syndromes* `±m·2^i`; the receiver detects them with a modulus
//! operation (`result mod A ≠ 0`) and corrects them by looking the residue
//! up in a correction table.
//!
//! An **ABN code** multiplies by `A·B` where `B` is a small prime (3 in
//! the paper). After correction with `A`, the residue modulo `B` provides
//! *detection* of miscorrections, playing the same role as the extra
//! parity bit that turns a Hamming SEC code into SECDED.
//!
//! **Data-aware ABN codes** exploit two observations about memristive
//! crossbars:
//!
//! 1. errors are *state dependent* — a physical row that stores fewer 1s
//!    (fewer low-resistance cells driven by the input vector) is less
//!    likely to produce a mis-quantized ADC output; and
//! 2. errors are *not equally important* — an error in the physical row
//!    that holds the most-significant bits perturbs the dot product far
//!    more than one in the least-significant row.
//!
//! Instead of spending the correction table on all single-bit syndromes,
//! the data-aware allocator ranks candidate error events (combinations of
//! up to four physical rows) by `probability × bit weight` and fills the
//! table greedily, correcting the errors that actually matter for the data
//! that is actually stored.
//!
//! # Quickstart
//!
//! ```
//! use ancode::{AbnCode, CorrectionPolicy};
//! use wideint::U256;
//!
//! // A classic A=19, B=3 code protecting 5-bit operands against any
//! // single-bit additive error.
//! let code = AbnCode::classic(19, 3, 5)?;
//!
//! // Encode; in a real accelerator this happens before the operand is
//! // bit-sliced and written to the crossbar.
//! let encoded = code.encode(U256::from(26u64))?;
//!
//! // A quantization error at bit 1 perturbs the analog sum by +2.
//! let observed = encoded + U256::from(2u64);
//!
//! let outcome = code.decode(observed.into(), CorrectionPolicy::KeepCorrected);
//! assert_eq!(outcome.value.to_i128(), Some(26));
//! assert!(outcome.status.was_corrected());
//! # Ok::<(), ancode::CodeError>(())
//! ```
//!
//! # Crate layout
//!
//! - [`AnCode`]: plain AN codes, residues, minimal single-error `A` search.
//! - [`Syndrome`], [`SyndromeFamily`]: additive error descriptions.
//! - [`CorrectionTable`]: residue → syndrome mapping.
//! - [`OperandGroup`]: multi-operand (e.g. 128-bit) coded groups.
//! - [`AbnCode`]: the full encode/correct/detect pipeline.
//! - [`RowErrorModel`], [`ErrorList`]: data-aware error enumeration.
//! - [`data_aware`]: greedy probability-ranked syndrome allocation.
//! - [`search`]: selection of `A` by correction capability.
//! - [`multiresidue`]: the `A·B₁·B₂…` generalization (Rao's bi- and
//!   multiresidue codes) for stronger miscorrection detection.
//! - [`transition`]: deterministic decode-outcome classification of
//!   additive errors and probability-weighted transition distributions
//!   (the foundation of the `accel::analytic` fast path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abn;
mod an;
pub mod data_aware;
mod error_list;
mod group;
pub mod multiresidue;
mod rowmodel;
pub mod search;
mod syndrome;
mod table;
pub mod transition;

pub use abn::{AbnCode, CorrectionPolicy, DecodeKind, DecodeOutcome, DecodeStatus};
pub use an::{min_single_error_a, AnCode};
pub use error_list::{ErrorCandidate, ErrorList, ErrorListConfig};
pub use group::{GroupLayout, OperandGroup};
pub use rowmodel::{RowError, RowErrorModel};
pub use syndrome::{Syndrome, SyndromeFamily, SyndromeTerm};
pub use table::{CorrectionTable, TableEntry, TableHalf};
pub use transition::{Transition, TransitionDist};

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or using an arithmetic code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodeError {
    /// `A` must be an odd integer ≥ 3 (even `A` cannot distinguish the
    /// syndromes `±2^i`, and `A < 3` has no nonzero residues).
    InvalidA(u64),
    /// `B` must be a small prime coprime with `A`.
    InvalidB {
        /// The correction multiplier.
        a: u64,
        /// The rejected detection multiplier.
        b: u64,
    },
    /// The operand does not fit in the code's data width.
    OperandTooWide {
        /// Bits required by the operand.
        required: u32,
        /// Bits provided by the code.
        available: u32,
    },
    /// The encoded value would exceed 256 bits.
    Overflow,
    /// The requested syndrome family has residue collisions under `A`, so
    /// `A` cannot correct it.
    ResidueCollision {
        /// The multiplier that failed.
        a: u64,
        /// The colliding residue class.
        residue: u64,
    },
    /// A group layout parameter is out of range.
    InvalidLayout(String),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidA(a) => write!(f, "invalid AN multiplier {a}: must be odd and >= 3"),
            CodeError::InvalidB { a, b } => {
                write!(
                    f,
                    "invalid detection multiplier {b} for A={a}: must be a prime coprime with A"
                )
            }
            CodeError::OperandTooWide {
                required,
                available,
            } => write!(
                f,
                "operand requires {required} bits but the code provides {available}"
            ),
            CodeError::Overflow => write!(f, "encoded value exceeds 256 bits"),
            CodeError::ResidueCollision { a, residue } => write!(
                f,
                "A={a} cannot correct the requested syndromes: residue {residue} is not unique"
            ),
            CodeError::InvalidLayout(msg) => write!(f, "invalid group layout: {msg}"),
        }
    }
}

impl Error for CodeError {}
