//! Input masks: which columns are driven during one read cycle.

/// The set of driven columns during one bit-serial input cycle, stored
/// as a 128-bit mask (one crossbar's worth of columns).
///
/// # Examples
///
/// ```
/// use xbar::InputMask;
///
/// let mut mask = InputMask::zeros(8);
/// mask.set(3, true);
/// mask.set(5, true);
/// assert_eq!(mask.count_ones(), 2);
/// assert!(mask.get(3) && !mask.get(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputMask {
    bits: u128,
    width: u32,
}

impl InputMask {
    /// Maximum supported width (columns per array).
    pub const MAX_WIDTH: u32 = 128;

    /// A mask of `width` columns, all off.
    ///
    /// # Panics
    ///
    /// Panics if `width > 128`.
    pub fn zeros(width: u32) -> InputMask {
        assert!(width <= Self::MAX_WIDTH, "width {width} exceeds 128");
        InputMask { bits: 0, width }
    }

    /// A mask of `width` columns, all driven — the worst case for row
    /// error susceptibility (§V-B5).
    pub fn all_ones(width: u32) -> InputMask {
        assert!(width <= Self::MAX_WIDTH, "width {width} exceeds 128");
        let bits = if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        InputMask { bits, width }
    }

    /// Builds a mask from bit `bit` of each value in `inputs` — one
    /// cycle of bit-serial input streaming.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() > 128`.
    pub fn from_bit_of(inputs: &[u64], bit: u32) -> InputMask {
        assert!(inputs.len() <= 128, "at most 128 columns per array");
        let mut bits = 0u128;
        for (i, &v) in inputs.iter().enumerate() {
            if (v >> bit) & 1 == 1 {
                bits |= 1 << i;
            }
        }
        InputMask {
            bits,
            width: inputs.len() as u32,
        }
    }

    /// Number of columns in the mask.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether column `i` is driven.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.width, "column {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Sets column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: u32, driven: bool) {
        assert!(i < self.width, "column {i} out of range");
        if driven {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Number of driven columns.
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// The raw bit representation.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Iterates over driven column indices in ascending order.
    ///
    /// Scans set bits directly (`trailing_zeros` + clear-lowest-bit)
    /// rather than testing every column, so sparse cycles cost
    /// proportional to `count_ones()` instead of `width()`. This sits in
    /// the innermost conductance-summation loop of every analog row
    /// read, and the ascending order is load-bearing: it fixes the `f64`
    /// summation order that the engine's golden tests pin down.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + 'static {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros();
            bits &= bits - 1;
            Some(i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        assert_eq!(InputMask::zeros(10).count_ones(), 0);
        assert_eq!(InputMask::all_ones(10).count_ones(), 10);
        assert_eq!(InputMask::all_ones(128).count_ones(), 128);
    }

    #[test]
    fn from_bit_extracts_column_bits() {
        let inputs = [0b101u64, 0b010, 0b111];
        let bit0 = InputMask::from_bit_of(&inputs, 0);
        assert!(bit0.get(0) && !bit0.get(1) && bit0.get(2));
        let bit1 = InputMask::from_bit_of(&inputs, 1);
        assert!(!bit1.get(0) && bit1.get(1) && bit1.get(2));
    }

    #[test]
    fn set_and_iter() {
        let mut m = InputMask::zeros(16);
        m.set(2, true);
        m.set(9, true);
        m.set(2, false);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        InputMask::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "exceeds 128")]
    fn width_cap() {
        InputMask::zeros(129);
    }
}
