//! Memristive crossbar simulation substrate.
//!
//! This crate models the analog matrix-vector-multiplication fabric that
//! the paper's error-correction scheme protects: multi-bit memristor
//! cells programmed to conductance levels, 128-wide physical rows whose
//! bitline currents implement dot products, ADC quantization, and the
//! physically motivated noise sources of §II-C:
//!
//! - **thermal (Johnson–Nyquist) noise** — zero-mean Gaussian current
//!   with `σ = sqrt(4·k_B·T·f / R)`;
//! - **shot noise** — zero-mean Gaussian with `σ = sqrt(2·q·I·f)`;
//! - **random telegraph noise (RTN)** — a two-state trap per cell whose
//!   resistance deviation `ΔR/R` follows the resistance-dependent Ielmini
//!   model (small for wide low-resistance filaments, saturating for
//!   narrow high-resistance ones) with asymmetric dwell times;
//! - **programming error** — a static ±1 % tolerance on the programmed
//!   resistance left by iterative write-verify;
//! - **stuck-at faults** — manufacturing or endurance failures pinning a
//!   cell at an arbitrary level.
//!
//! The crate provides two fidelities:
//!
//! - [`CrossbarArray::read_row`] — Monte-Carlo sampling of one row
//!   readout (per-level binomial RTN draws + Gaussian noise), fast enough
//!   for network-scale accuracy simulation; and
//! - [`rowerr::predict_row`] — the closed-form binomial-CDF predictor of
//!   §V-B5 that data-aware code construction uses.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use xbar::{BitSlicer, CrossbarArray, DeviceParams, InputMask};
//!
//! let params = DeviceParams::default(); // Table I of the paper
//! let slicer = BitSlicer::new(2, 8);    // 2-bit cells, 8-bit words
//!
//! // One logical row of four 8-bit weights → four physical rows.
//! let rows = slicer.slice_words(&[0x5A, 0x13, 0xFF, 0x00]);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let array = CrossbarArray::program(&rows, &params, &mut rng);
//!
//! let mask = InputMask::all_ones(4);
//! let ideal = array.ideal_row_output(0, &mask);
//! let noisy = array.read_row(0, &mask, &mut rng);
//! assert!((noisy - ideal).abs() <= 4); // errors are small integer shifts
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod array;
mod bitslice;
mod device;
pub mod endurance;
mod mask;
pub mod rowerr;
pub mod stats;

pub use adc::Adc;
pub use array::{ArrayError, CrossbarArray, PhysicalRow, RtnSnapshot};
pub use bitslice::BitSlicer;
pub use device::{DeviceParams, RtnModel};
pub use mask::InputMask;
