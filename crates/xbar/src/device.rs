//! Device parameters (Table I) and the Ielmini RTN model (§II-C3).

/// Boltzmann constant, J/K.
pub(crate) const K_B: f64 = 1.380_649e-23;
/// Elementary charge, C.
pub(crate) const Q_E: f64 = 1.602_176_634e-19;
/// Vacuum permittivity, F/m.
pub(crate) const EPS_0: f64 = 8.854_187_8128e-12;

/// Memristor device and operating-point parameters.
///
/// Defaults reproduce Table I of the paper: a NiO-like stack with a
/// 2 kΩ–5 MΩ dynamic range read at 0.3 V and 350 K, iteratively
/// programmed to within 1 % of the target resistance, with a 0.1 %
/// stuck-at failure rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Lowest programmable resistance (Ω); the fully-on state.
    pub r_lo: f64,
    /// Highest programmable resistance (Ω); the off state.
    pub r_hi: f64,
    /// Bits stored per cell (1–5 in the evaluation).
    pub bits_per_cell: u32,
    /// Read voltage (V) applied to driven columns.
    pub v_read: f64,
    /// Operating temperature (K).
    pub temperature: f64,
    /// Effective noise bandwidth of one read (Hz). The paper's transient
    /// analysis samples at ADC rate; 1 GHz reflects the ~ns read of an
    /// ISAAC-class design.
    pub bandwidth: f64,
    /// Dielectric film thickness `t_h` (m).
    pub film_thickness: f64,
    /// Metallic nanowire (filament) resistivity `ρ0` (Ω·m).
    pub film_resistivity: f64,
    /// Relative resistivity increase `α` of the trapped region.
    pub rtn_alpha: f64,
    /// Relative permittivity `ε_r` of the dielectric (multiples of ε0).
    pub rel_permittivity: f64,
    /// Effective trap cross-section (m²), derived from the dopant
    /// concentration via Debye screening; calibrated so the Ielmini
    /// model yields `ΔR/R ≈ 2.8 %` at `R_LO` (the paper's derived value).
    pub trap_area: f64,
    /// Probability a cell sits in the RTN error (trapped) state at any
    /// sampling instant: `τ_on / (τ_on + τ_off)` of the asymmetric dwell
    /// process.
    pub rtn_state_probability: f64,
    /// Whether programming applies the RTN offset calibration of §IV
    /// (lowering the programmed resistance by `p·ΔR` so the
    /// time-averaged current matches the target). Disabled only for
    /// ablation studies.
    pub rtn_offset: bool,
    /// Mean dwell time in the trapped state (s), for transient analysis.
    pub rtn_tau_on: f64,
    /// Probability that a cell is a stuck-at fault (manufacturing defect
    /// or endurance failure).
    pub fault_rate: f64,
    /// Residual relative error of iterative programming (1 % in the
    /// paper: "short pulse programming ... to within 1 % of the target").
    pub programming_tolerance: f64,
}

impl Default for DeviceParams {
    fn default() -> DeviceParams {
        DeviceParams {
            r_lo: 2e3,
            r_hi: 5e6,
            bits_per_cell: 2,
            v_read: 0.3,
            temperature: 350.0,
            bandwidth: 1e9,
            film_thickness: 20e-9,
            film_resistivity: 1e-6, // 100 µΩ·cm
            rtn_alpha: 2.0,
            rel_permittivity: 12.0,
            // Calibrated: ΔR/R(R_LO = 2 kΩ) = 2.8 %, saturating toward
            // (1 − 1/α) = 50 % at R_HI — the paper's derived corner values.
            trap_area: 5.93e-19,
            rtn_state_probability: 0.25,
            rtn_offset: true,
            rtn_tau_on: 1e-4,
            fault_rate: 1e-3,
            programming_tolerance: 0.01,
        }
    }
}

impl DeviceParams {
    /// Number of distinct conductance levels: `2^bits_per_cell`.
    pub fn levels(&self) -> u32 {
        1 << self.bits_per_cell
    }

    /// Maximum storable level value.
    pub fn max_level(&self) -> u32 {
        self.levels() - 1
    }

    /// Conductance (S) of a cell programmed to `level`.
    ///
    /// Level 0 maps to the high-resistance state, the maximum level to
    /// `R_LO`, with conductance spaced linearly in between so that
    /// bitline current is proportional to the stored integer.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`DeviceParams::max_level`].
    pub fn conductance(&self, level: u32) -> f64 {
        assert!(level <= self.max_level(), "level {level} out of range");
        let g_min = 1.0 / self.r_hi;
        let g_max = 1.0 / self.r_lo;
        g_min + (g_max - g_min) * level as f64 / self.max_level() as f64
    }

    /// Conductance step between adjacent levels: the current LSB of the
    /// row ADC is `v_read × g_step`.
    pub fn g_step(&self) -> f64 {
        (1.0 / self.r_lo - 1.0 / self.r_hi) / self.max_level() as f64
    }

    /// Current (A) contributed by one driven cell at `level`, noise-free.
    pub fn cell_current(&self, level: u32) -> f64 {
        self.v_read * self.conductance(level)
    }

    /// Thermal-noise standard deviation (A) for a single resistor `r`:
    /// `sqrt(4·k_B·T·f / R)` (§II-C1).
    pub fn thermal_sigma(&self, r: f64) -> f64 {
        (4.0 * K_B * self.temperature * self.bandwidth / r).sqrt()
    }

    /// Shot-noise standard deviation (A) for a current `i`:
    /// `sqrt(2·q·I·f)` (§II-C2).
    pub fn shot_sigma(&self, i: f64) -> f64 {
        (2.0 * Q_E * i.abs() * self.bandwidth).sqrt()
    }

    /// The RTN model evaluated for this device.
    pub fn rtn(&self) -> RtnModel {
        RtnModel {
            alpha: self.rtn_alpha,
            trap_area: self.trap_area,
            filament_area_coeff: self.film_resistivity * self.film_thickness,
            state_probability: self.rtn_state_probability,
            tau_on: self.rtn_tau_on,
        }
    }

    /// Returns a copy with [`trap_area`](DeviceParams::trap_area)
    /// recalibrated so the Ielmini model yields the given `ΔR/R` at
    /// `R_LO` — the sensitivity-sweep axis of Figure 12.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target < 1 − 1/α` (the saturation bound).
    #[must_use]
    pub fn with_rlo_delta_r(mut self, target: f64) -> DeviceParams {
        let sat = 1.0 - 1.0 / self.rtn_alpha;
        assert!(
            target > 0.0 && target < sat,
            "ΔR/R target {target} outside (0, {sat})"
        );
        // d = sat·x/(1+x) with x = A_t·R/(ρ0·t_h)  ⇒  x = d/(sat − d).
        let x = target / (sat - target);
        self.trap_area = x * self.film_resistivity * self.film_thickness / self.r_lo;
        self
    }

    /// Debye screening length (m) implied by a dopant concentration
    /// `n_d` (m⁻³): `sqrt(ε_r·ε_0·k_B·T / (q²·n_d))`.
    ///
    /// [`DeviceParams::trap_area`] ≈ `π·L_D²`; this helper exposes the
    /// derivation chain from the paper's seven material parameters.
    pub fn debye_length(&self, n_d: f64) -> f64 {
        (self.rel_permittivity * EPS_0 * K_B * self.temperature / (Q_E * Q_E * n_d)).sqrt()
    }
}

/// The resistance-dependent RTN amplitude model of Ielmini et al.
///
/// The conductive filament is a nanowire of resistivity `ρ0` and length
/// `t_h`, so its cross-section is `A_f = ρ0·t_h / R`. A trapped electron
/// raises the resistivity of a region of cross-section `A_t` by the
/// factor `α`. In a low-resistance (wide-filament) state the trap
/// perturbs a small fraction of the conduction area and `ΔR/R` is small;
/// as the filament narrows the deviation grows, saturating at
/// `1 − 1/α` when the trap spans the entire filament:
///
/// `ΔR/R = (1 − 1/α) · x / (1 + x)`, with `x = A_t / A_f ∝ R`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtnModel {
    /// Relative resistivity increase of the trapped region.
    pub alpha: f64,
    /// Trap cross-section (m²).
    pub trap_area: f64,
    /// `ρ0 · t_h` (Ω·m²): filament area is this divided by `R`.
    pub filament_area_coeff: f64,
    /// Probability of occupying the trapped state at a sampling instant.
    pub state_probability: f64,
    /// Mean trapped-state dwell time (s).
    pub tau_on: f64,
}

impl RtnModel {
    /// Relative resistance deviation `ΔR/R` for a cell at resistance `r`.
    pub fn delta_r_over_r(&self, r: f64) -> f64 {
        assert!(r > 0.0, "resistance must be positive");
        let a_f = self.filament_area_coeff / r;
        let x = self.trap_area / a_f;
        (1.0 - 1.0 / self.alpha) * x / (1.0 + x)
    }

    /// Relative *current* drop when the trap is occupied:
    /// `ΔI/I = ΔR / (R + ΔR)`.
    pub fn delta_i_over_i(&self, r: f64) -> f64 {
        let d = self.delta_r_over_r(r);
        d / (1.0 + d)
    }

    /// Mean dwell time (s) in the untrapped state, from the asymmetric
    /// state probability: `τ_off = τ_on·(1 − p)/p`.
    pub fn tau_off(&self) -> f64 {
        self.tau_on * (1.0 - self.state_probability) / self.state_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_defaults() {
        let p = DeviceParams::default();
        assert_eq!(p.r_lo, 2e3);
        assert_eq!(p.r_hi, 5e6);
        assert_eq!(p.v_read, 0.3);
        assert_eq!(p.temperature, 350.0);
        assert_eq!(p.fault_rate, 1e-3);
        assert_eq!(p.bits_per_cell, 2);
    }

    #[test]
    fn conductance_endpoints_and_monotonic() {
        let p = DeviceParams {
            bits_per_cell: 3,
            ..DeviceParams::default()
        };
        assert!((p.conductance(0) - 1.0 / p.r_hi).abs() < 1e-15);
        assert!((p.conductance(7) - 1.0 / p.r_lo).abs() < 1e-12);
        for l in 0..7 {
            assert!(p.conductance(l + 1) > p.conductance(l));
        }
    }

    #[test]
    fn conductance_linear_in_level() {
        let p = DeviceParams::default(); // 2-bit
        let step01 = p.conductance(1) - p.conductance(0);
        let step23 = p.conductance(3) - p.conductance(2);
        assert!((step01 - step23).abs() / step01 < 1e-12);
        assert!((step01 - p.g_step()).abs() / step01 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn conductance_rejects_high_level() {
        DeviceParams::default().conductance(4);
    }

    #[test]
    fn rtn_matches_paper_corner_values() {
        // §VII-B: "we derive ΔR/R for R_LO and R_HI as 2.8 % and 50 %".
        let rtn = DeviceParams::default().rtn();
        let lo = rtn.delta_r_over_r(2e3);
        let hi = rtn.delta_r_over_r(5e6);
        assert!((lo - 0.028).abs() < 0.002, "ΔR/R(R_LO) = {lo}");
        assert!((hi - 0.50).abs() < 0.01, "ΔR/R(R_HI) = {hi}");
    }

    #[test]
    fn rtn_monotonic_in_resistance() {
        let rtn = DeviceParams::default().rtn();
        let mut prev = 0.0;
        for r in [1e3, 1e4, 1e5, 1e6, 1e7, 1e9] {
            let d = rtn.delta_r_over_r(r);
            assert!(d > prev);
            prev = d;
        }
        // Saturates below 1 − 1/α.
        assert!(prev < 1.0 - 1.0 / 2.0 + 1e-9);
    }

    #[test]
    fn rtn_current_drop_less_than_resistance_rise() {
        let rtn = DeviceParams::default().rtn();
        let r = 1e5;
        assert!(rtn.delta_i_over_i(r) < rtn.delta_r_over_r(r));
    }

    #[test]
    fn asymmetric_dwell_times() {
        // τ_off several times larger than τ_on (§II-C3).
        let rtn = DeviceParams::default().rtn();
        assert!(rtn.tau_off() > 2.0 * rtn.tau_on);
    }

    #[test]
    fn thermal_noise_scales_inversely_with_r() {
        let p = DeviceParams::default();
        assert!(p.thermal_sigma(2e3) > p.thermal_sigma(5e6));
        // σ = sqrt(4·kB·350·1e9 / 2000) ≈ 9.83e-8 A.
        let sigma = p.thermal_sigma(2e3);
        assert!((sigma - 9.83e-8).abs() / sigma < 0.01, "sigma {sigma}");
    }

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let p = DeviceParams::default();
        let s1 = p.shot_sigma(1e-4);
        let s4 = p.shot_sigma(4e-4);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn debye_length_decreases_with_doping() {
        let p = DeviceParams::default();
        assert!(p.debye_length(1e26) < p.debye_length(1e24));
    }
}
