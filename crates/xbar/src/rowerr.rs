//! Analytical row-error-rate prediction (§V-B5 of the paper).
//!
//! Data-aware code construction needs, for every physical row, the
//! probability that the row's ADC output mis-quantizes high or low.
//! Rather than Monte-Carlo-sampling each row, the paper models a row as
//! parallel resistors under the worst-case all-ones input vector:
//!
//! 1. compute the error-free (RTN-offset-calibrated) current of the row
//!    state;
//! 2. find how many cells must be in (or out of) the RTN error state for
//!    the current to cross the upper or lower quantization boundary; and
//! 3. evaluate a binomial CDF over the driven cells.
//!
//! The prediction is a *model*, not ground truth — the paper notes that
//! characterization of fabricated rows could replace it. What matters is
//! the mapping from row state to error probability that the allocator
//! consumes.
//!
//! # Two consumers, two input regimes
//!
//! The predictor started life feeding the data-aware code allocator,
//! which only needs the *worst-case* rate under the all-ones input
//! ([`predict_row`]). The analytic fast path (`accel::analytic`) also
//! needs the rate at *partial* input densities: during bit-serial
//! streaming, cycle `t` drives only the columns whose quantized input
//! has bit `t` set, and a row with fewer driven cells is proportionally
//! less likely to cross a quantization boundary.
//! [`predict_composition_at_density`] covers that regime by scaling the
//! stored composition to the driven fraction before evaluating the same
//! binomial model, so the two entry points can never disagree about the
//! underlying physics.
//!
//! ```
//! use xbar::{rowerr, DeviceParams};
//!
//! let params = DeviceParams::default();
//! let full = rowerr::predict_composition(&[32, 32, 32, 32], &params);
//! let half = rowerr::predict_composition_at_density(&[32, 32, 32, 32], 0.5, &params);
//! // Half the driven cells: strictly fewer chances to mis-quantize.
//! assert!(half.p_any() < full.p_any());
//! // Density 1.0 is exactly the all-ones prediction.
//! let one = rowerr::predict_composition_at_density(&[32, 32, 32, 32], 1.0, &params);
//! assert_eq!(one, full);
//! ```

use crate::stats::{binomial_cdf, binomial_sf};
use crate::{CrossbarArray, DeviceParams, InputMask};

/// Predicted quantization-error probabilities for one physical row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowErrorRate {
    /// Probability the row output quantizes at least one step high.
    pub p_high: f64,
    /// Probability the row output quantizes at least one step low.
    pub p_low: f64,
}

impl RowErrorRate {
    /// Total probability of any mis-quantization.
    pub fn p_any(&self) -> f64 {
        (self.p_high + self.p_low).min(1.0)
    }
}

/// Predicts the error rate of a row with the given per-level driven-cell
/// counts (`composition[l]` = cells at level `l`), under the worst-case
/// all-ones input.
///
/// The per-cell RTN current drops `delta_i[l]` and the occupancy
/// probability come from `params`; the quantization LSB is
/// `v_read · g_step`.
///
/// # Examples
///
/// ```
/// use xbar::{rowerr, DeviceParams};
///
/// let params = DeviceParams::default();
/// // 128 driven cells, 2-bit, equal state occupancy — the Figure 7 row.
/// let rate = rowerr::predict_composition(&[32, 32, 32, 32], &params);
/// assert!(rate.p_any() > 0.01 && rate.p_any() < 0.5);
/// ```
pub fn predict_composition(composition: &[u32], params: &DeviceParams) -> RowErrorRate {
    assert_eq!(
        composition.len(),
        params.levels() as usize,
        "composition must have one count per level"
    );
    let rtn = params.rtn();
    let p = rtn.state_probability;
    let lsb = params.v_read * params.g_step();

    // Aggregate the per-level two-state deviations into an exchangeable
    // per-cell drop δ̄ over the cells that matter (nonzero conductance
    // swing), as the paper's "simple model of parallel resistors" does.
    let mut n_eff = 0u32;
    let mut delta_sum = 0.0;
    for (level, &count) in composition.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let r_target = 1.0 / params.conductance(level as u32);
        let d_target = rtn.delta_r_over_r(r_target);
        let offset = if params.rtn_offset {
            p * d_target / (1.0 + d_target)
        } else {
            0.0
        };
        let r_prog = r_target * (1.0 - offset);
        let d = rtn.delta_r_over_r(r_prog);
        let delta_i = params.v_read / r_prog * (d / (1.0 + d));
        // Level-0 cells have a negligible current swing; weighting by
        // δ keeps them from diluting the effective population.
        delta_sum += count as f64 * delta_i;
        if delta_i > lsb * 1e-3 {
            n_eff += count;
        }
    }
    if n_eff == 0 || delta_sum == 0.0 {
        return RowErrorRate {
            p_high: 0.0,
            p_low: 0.0,
        };
    }
    let delta_bar = delta_sum / n_eff as f64;

    // Calibrated current: trapped-count expectation μ = p·n. Deviation
    // from ideal when m cells are trapped: ΔI = (μ − m)·δ̄ when the RTN
    // offset is applied; without it the whole distribution shifts up by
    // μ·δ̄ (the untrapped current is the target), i.e. ΔI = −m·δ̄ + bias.
    let mu = p * n_eff as f64;
    let bias_cells = if params.rtn_offset { 0.0 } else { mu };
    let threshold_cells = 0.5 * lsb / delta_bar;

    // High error: current exceeds ideal + LSB/2 ⇔ m < μ + bias − threshold.
    let k_high = (mu + bias_cells - threshold_cells).floor();
    let p_high = if k_high >= 0.0 {
        binomial_cdf(n_eff, k_high as u32, p)
    } else {
        0.0
    };

    // Low error: current falls below ideal − LSB/2 ⇔ m > μ + bias + threshold.
    let k_low = (mu + bias_cells + threshold_cells).ceil() as i64;
    let p_low = if k_low <= n_eff as i64 {
        binomial_sf(n_eff, k_low as u32, p)
    } else {
        0.0
    };

    RowErrorRate { p_high, p_low }
}

/// Predicts the error rate of a row when only a `density` fraction of
/// its cells are driven by the input vector.
///
/// The composition is scaled per level (`round(count · density)`) to
/// the expected driven sub-population under an input mask of that
/// density, then evaluated through the same binomial model as
/// [`predict_composition`] — density `1.0` reproduces it exactly. The
/// scaled composition is the *expected* one; callers that know the
/// exact driven cells should pass their true composition instead.
/// `density` is clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use xbar::{rowerr, DeviceParams};
///
/// let params = DeviceParams::default();
/// // Bit-serial cycle driving 1/4 of a uniformly-programmed row.
/// let quarter = rowerr::predict_composition_at_density(&[32, 32, 32, 32], 0.25, &params);
/// let full = rowerr::predict_composition(&[32, 32, 32, 32], &params);
/// assert!(quarter.p_any() < full.p_any());
/// // No driven cells, no error.
/// let idle = rowerr::predict_composition_at_density(&[32, 32, 32, 32], 0.0, &params);
/// assert_eq!(idle.p_any(), 0.0);
/// ```
pub fn predict_composition_at_density(
    composition: &[u32],
    density: f64,
    params: &DeviceParams,
) -> RowErrorRate {
    let density = density.clamp(0.0, 1.0);
    // lint: allow(float_eq, exact boundary after clamp(0.0, 1.0): 1.0 is produced literally by clamp, not by arithmetic)
    if density == 1.0 {
        return predict_composition(composition, params);
    }
    let scaled: Vec<u32> = composition
        .iter()
        .map(|&c| (c as f64 * density).round() as u32)
        .collect();
    predict_composition(&scaled, params)
}

/// Predicts the worst-case (all-ones input) error rate of physical row
/// `row` of a programmed array, using its *actual* stored levels (so
/// stuck cells are accounted at their stuck level).
pub fn predict_row(array: &CrossbarArray, row: usize) -> RowErrorRate {
    let r = &array.rows()[row];
    let mask = InputMask::all_ones(r.width());
    let composition = r.active_composition(&mask);
    predict_composition(&composition, array.params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fewer_ones_means_fewer_errors() {
        // The headline data-aware observation: "a physical row that
        // contains fewer 1s is less susceptible to an error".
        let params = DeviceParams::default();
        let sparse = predict_composition(&[120, 0, 0, 8], &params);
        let dense = predict_composition(&[0, 0, 0, 128], &params);
        assert!(sparse.p_any() < dense.p_any());
    }

    #[test]
    fn empty_row_never_errs() {
        let params = DeviceParams::default();
        let rate = predict_composition(&[128, 0, 0, 0], &params);
        // All cells at level 0: negligible swing.
        assert!(rate.p_any() < 0.05);
        let rate = predict_composition(&[0, 0, 0, 0], &params);
        assert_eq!(rate.p_any(), 0.0);
    }

    #[test]
    fn figure_7_regime() {
        // 128 cells, equal 2-bit occupancy: the paper reports 14.5 %.
        let params = DeviceParams::default();
        let rate = predict_composition(&[32, 32, 32, 32], &params);
        assert!(
            (0.02..0.40).contains(&rate.p_any()),
            "p_any = {}",
            rate.p_any()
        );
    }

    #[test]
    fn probabilities_are_probabilities() {
        let params = DeviceParams::default();
        for comp in [[128, 0, 0, 0], [0, 128, 0, 0], [10, 20, 30, 68]] {
            let r = predict_composition(&comp, &params);
            assert!((0.0..=1.0).contains(&r.p_high));
            assert!((0.0..=1.0).contains(&r.p_low));
            assert!(r.p_any() <= 1.0);
        }
    }

    #[test]
    fn prediction_tracks_monte_carlo() {
        // The analytical predictor should land within a few× of the
        // sampled error rate for a representative row.
        let params = DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let levels = vec![(0..128).map(|i| i % 4).collect::<Vec<u32>>()];
        let array = CrossbarArray::program(&levels, &params, &mut rng);
        let mask = InputMask::all_ones(128);
        let ideal = array.ideal_row_output(0, &mask);
        let trials = 6000;
        let errors = (0..trials)
            .filter(|_| array.read_row(0, &mask, &mut rng) != ideal)
            .count();
        let measured = errors as f64 / trials as f64;
        let predicted = predict_row(&array, 0).p_any();
        assert!(
            predicted > measured / 5.0 && predicted < measured * 5.0 + 0.05,
            "predicted {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn stuck_cells_enter_composition_at_actual_level() {
        let params = DeviceParams {
            fault_rate: 1.0,
            ..DeviceParams::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let array = CrossbarArray::program(&[vec![0u32; 16]], &params, &mut rng);
        // Every cell got re-pinned to a random level; composition follows
        // actual, not target, levels.
        let comp = array.rows()[0].active_composition(&InputMask::all_ones(16));
        assert_eq!(comp.iter().sum::<u32>(), 16);
        assert!(comp[0] < 16, "some cells moved off level 0");
        let _ = predict_row(&array, 0);
    }

    #[test]
    fn density_scaling_is_monotone_and_anchored() {
        let params = DeviceParams::default();
        let comp = [32u32, 32, 32, 32];
        let mut last = 0.0;
        for k in 0..=8 {
            let d = k as f64 / 8.0;
            let r = predict_composition_at_density(&comp, d, &params).p_any();
            assert!(
                r >= last - 1e-12,
                "p_any not monotone in density: {r} < {last} at d={d}"
            );
            last = r;
        }
        // Endpoint anchors: density 1 ≡ the unscaled predictor; out-of-
        // range densities clamp rather than extrapolate.
        assert_eq!(
            predict_composition_at_density(&comp, 1.0, &params),
            predict_composition(&comp, &params)
        );
        assert_eq!(
            predict_composition_at_density(&comp, 7.0, &params),
            predict_composition(&comp, &params)
        );
    }

    #[test]
    fn higher_rtn_probability_raises_error_rate() {
        let lo = DeviceParams {
            rtn_state_probability: 0.17,
            ..DeviceParams::default()
        };
        let hi = DeviceParams {
            rtn_state_probability: 0.37,
            ..DeviceParams::default()
        };
        let comp = [32, 32, 32, 32];
        // Fig 12's sweep direction: more RTN occupancy, more errors.
        // (The dependence can be non-monotonic near saturation; the sweep
        // endpoints of the paper are safely ordered.)
        let r_lo = predict_composition(&comp, &lo).p_any();
        let r_hi = predict_composition(&comp, &hi).p_any();
        assert!(r_hi > r_lo * 0.5, "lo {r_lo} hi {r_hi}");
    }
}
