//! ADC quantization of bitline currents.

use crate::{DeviceParams, InputMask};

/// An idealized row ADC.
///
/// The converter digitizes a row current into the integer dot-product
/// contribution of that physical row. The driver electronics know the
/// input mask, so the data-independent offset current contributed by the
/// finite off-state conductance (`n_active · V · G_min`) is subtracted
/// before quantization, and the output is clamped to the representable
/// range `[0, n_active · max_level]`.
///
/// Mis-quantization — noise pushing the current across a `±0.5 LSB`
/// boundary — is exactly the integer additive error the AN codes are
/// designed to correct.
///
/// # Examples
///
/// ```
/// use xbar::{Adc, DeviceParams, InputMask};
///
/// let params = DeviceParams::default();
/// let adc = Adc::new(&params);
/// let mask = InputMask::all_ones(4);
///
/// // Four driven cells at levels 3, 1, 0, 2 → ideal output 6.
/// let current: f64 = [3, 1, 0, 2]
///     .iter()
///     .map(|&l| params.cell_current(l))
///     .sum();
/// assert_eq!(adc.quantize(current, &mask), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adc {
    /// Current per output LSB: `v_read · g_step`.
    lsb: f64,
    /// Reciprocal of `lsb`, precomputed for the batched read path
    /// ([`quantize_fast`](Adc::quantize_fast)).
    lsb_recip: f64,
    /// Offset current per active column: `v_read · g_min`.
    offset_per_active: f64,
    /// Largest level one cell can contribute.
    max_level: u32,
}

impl Adc {
    /// Creates the ADC matching a device's level spacing.
    pub fn new(params: &DeviceParams) -> Adc {
        let lsb = params.v_read * params.g_step();
        Adc {
            lsb,
            lsb_recip: 1.0 / lsb,
            offset_per_active: params.v_read / params.r_hi,
            max_level: params.max_level(),
        }
    }

    /// The current corresponding to one output LSB.
    pub fn lsb(&self) -> f64 {
        self.lsb
    }

    /// Quantizes a row current to its integer output for the given
    /// input mask.
    pub fn quantize(&self, current: f64, mask: &InputMask) -> u32 {
        let active = mask.count_ones();
        let corrected = current - active as f64 * self.offset_per_active;
        let code = (corrected / self.lsb).round();
        let max = (active * self.max_level) as f64;
        code.clamp(0.0, max) as u32
    }

    /// Quantizes a row current given a precomputed active-column count,
    /// dividing by multiply-with-reciprocal. Used by the batched read
    /// path, where the per-read divide is measurable; the reciprocal
    /// multiply can round differently from the exact divide within
    /// half an ulp of an LSB boundary, which the batched goldens pin.
    pub(crate) fn quantize_fast(&self, current: f64, active: u32) -> u32 {
        let corrected = current - active as f64 * self.offset_per_active;
        let code = (corrected * self.lsb_recip).round();
        let max = (active * self.max_level) as f64;
        code.clamp(0.0, max) as u32
    }

    /// The ideal (noise-free) current for integer output `code` under
    /// `mask` — the inverse of [`quantize`](Adc::quantize) at boundary
    /// centers.
    pub fn ideal_current(&self, code: u32, mask: &InputMask) -> f64 {
        code as f64 * self.lsb + mask.count_ones() as f64 * self.offset_per_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc_and_params() -> (Adc, DeviceParams) {
        let p = DeviceParams::default();
        (Adc::new(&p), p)
    }

    #[test]
    fn quantizes_exact_levels() {
        let (adc, p) = adc_and_params();
        let mask = InputMask::all_ones(3);
        for total in 0..=9u32 {
            // Compose any cell currents summing to `total` level units.
            let current = total as f64 * p.v_read * p.g_step()
                + 3.0 * p.v_read / p.r_hi;
            assert_eq!(adc.quantize(current, &mask), total);
        }
    }

    #[test]
    fn noise_below_half_lsb_is_absorbed() {
        let (adc, _) = adc_and_params();
        let mask = InputMask::all_ones(2);
        let clean = adc.ideal_current(3, &mask);
        assert_eq!(adc.quantize(clean + 0.49 * adc.lsb(), &mask), 3);
        assert_eq!(adc.quantize(clean - 0.49 * adc.lsb(), &mask), 3);
        assert_eq!(adc.quantize(clean + 0.51 * adc.lsb(), &mask), 4);
        assert_eq!(adc.quantize(clean - 0.51 * adc.lsb(), &mask), 2);
    }

    #[test]
    fn clamps_to_range() {
        let (adc, _) = adc_and_params();
        let mask = InputMask::all_ones(2);
        // 2 active cells × max level 3 → 6.
        assert_eq!(adc.quantize(1.0, &mask), 6);
        assert_eq!(adc.quantize(-1.0, &mask), 0);
    }

    #[test]
    fn roundtrip_through_ideal_current() {
        let (adc, _) = adc_and_params();
        let mask = InputMask::all_ones(7);
        for code in [0u32, 1, 5, 21] {
            assert_eq!(adc.quantize(adc.ideal_current(code, &mask), &mask), code);
        }
    }

    #[test]
    fn quantize_fast_agrees_with_quantize() {
        let (adc, p) = adc_and_params();
        for n in [1u32, 3, 17, 128] {
            let mask = InputMask::all_ones(n);
            for code in [0u32, 1, 2, 3 * n] {
                let clean = adc.ideal_current(code, &mask);
                for jitter in [-0.4, -0.1, 0.0, 0.1, 0.4] {
                    let current = clean + jitter * adc.lsb() + 0.3 * p.v_read / p.r_hi;
                    assert_eq!(
                        adc.quantize_fast(current, n),
                        adc.quantize(current, &mask),
                        "n={n} code={code} jitter={jitter}"
                    );
                }
            }
        }
    }

    #[test]
    fn offset_subtraction_tracks_active_count() {
        let (adc, p) = adc_and_params();
        // Same stored data, different numbers of active columns: the
        // offset correction keeps the code equal to the active sum.
        for n in [1u32, 4, 64, 128] {
            let mask = InputMask::all_ones(n);
            let current: f64 = (0..n).map(|_| p.cell_current(2)).sum();
            assert_eq!(adc.quantize(current, &mask), 2 * n);
        }
    }
}
