//! Bit slicing of weight words into physical-row cell levels (§II-B1,
//! Figure 2 of the paper).
//!
//! A logical matrix row of `W`-bit weights is stored across
//! `ceil(W / c)` physical rows of `c`-bit cells: physical row `r` holds
//! bits `[r·c, (r+1)·c)` of every weight. The shift-and-add reduction
//! tree recombines the per-row ADC outputs with weights `2^{r·c}`.

use wideint::U256;

/// Slices words into per-bit-position cell levels and reduces row
/// outputs back into integers.
///
/// # Examples
///
/// Figure 2 of the paper — the logical row `[5, 9, 6, 7]` sliced at one
/// bit per cell:
///
/// ```
/// use xbar::BitSlicer;
///
/// let slicer = BitSlicer::new(1, 4);
/// let rows = slicer.slice_words(&[5, 9, 6, 7]);
/// assert_eq!(rows[0], vec![1, 1, 0, 1]); // LSBs
/// assert_eq!(rows[1], vec![0, 0, 1, 1]);
/// assert_eq!(rows[2], vec![1, 0, 1, 1]);
/// assert_eq!(rows[3], vec![0, 1, 0, 0]); // MSBs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitSlicer {
    cell_bits: u32,
    word_bits: u32,
}

impl BitSlicer {
    /// Creates a slicer for `word_bits`-bit words on `cell_bits`-bit
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_bits` is 0 or greater than 8, or if `word_bits`
    /// is 0 or greater than 256.
    pub fn new(cell_bits: u32, word_bits: u32) -> BitSlicer {
        assert!(
            (1..=8).contains(&cell_bits),
            "cell_bits {cell_bits} out of range 1..=8"
        );
        assert!(
            (1..=256).contains(&word_bits),
            "word_bits {word_bits} out of range 1..=256"
        );
        BitSlicer {
            cell_bits,
            word_bits,
        }
    }

    /// Bits per cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Bits per word.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Physical rows needed per word: `ceil(word_bits / cell_bits)`.
    pub fn rows_per_word(&self) -> u32 {
        self.word_bits.div_ceil(self.cell_bits)
    }

    /// Bit position of physical row `r`'s least significant bit.
    pub fn row_lsb(&self, row: u32) -> u32 {
        row * self.cell_bits
    }

    /// Slices `u64` words: result `[r][j]` is the level of column `j` in
    /// physical row `r`.
    ///
    /// # Panics
    ///
    /// Panics if any word exceeds `word_bits` or `word_bits > 64`.
    pub fn slice_words(&self, words: &[u64]) -> Vec<Vec<u32>> {
        assert!(self.word_bits <= 64, "use slice_wide for words over 64 bits");
        self.slice_wide(&words.iter().map(|&w| U256::from(w)).collect::<Vec<_>>())
    }

    /// Slices arbitrary-width words (e.g. AN-encoded 128-bit groups).
    ///
    /// # Panics
    ///
    /// Panics if any word exceeds `word_bits`.
    pub fn slice_wide(&self, words: &[U256]) -> Vec<Vec<u32>> {
        let mask = (1u64 << self.cell_bits) - 1;
        (0..self.rows_per_word())
            .map(|r| {
                let lo = self.row_lsb(r);
                let width = self.cell_bits.min(self.word_bits - lo);
                words
                    .iter()
                    .map(|w| {
                        assert!(
                            w.bits() <= self.word_bits,
                            "word of {} bits exceeds {}-bit slicer",
                            w.bits(),
                            self.word_bits
                        );
                        (w.extract_bits(lo, width) & mask) as u32
                    })
                    .collect()
            })
            .collect()
    }

    /// Recombines per-row integer outputs with the shift-and-add tree:
    /// `Σ outputs[r] · 2^{r·cell_bits}`.
    pub fn reduce(&self, outputs: &[u64]) -> U256 {
        outputs
            .iter()
            .enumerate()
            .fold(U256::ZERO, |acc, (r, &o)| {
                acc + (U256::from(o) << self.row_lsb(r as u32))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_word_rounds_up() {
        assert_eq!(BitSlicer::new(2, 16).rows_per_word(), 8);
        assert_eq!(BitSlicer::new(3, 16).rows_per_word(), 6);
        assert_eq!(BitSlicer::new(5, 16).rows_per_word(), 4);
        // The paper's example: 137-bit coded groups at 4 bits/cell → 35.
        assert_eq!(BitSlicer::new(4, 137).rows_per_word(), 35);
    }

    #[test]
    fn slice_reduce_roundtrip_u64() {
        for cell_bits in 1..=5 {
            let slicer = BitSlicer::new(cell_bits, 16);
            let words = [0u64, 1, 0x1234, 0xFFFF, 0x8001];
            let rows = slicer.slice_words(&words);
            assert_eq!(rows.len(), slicer.rows_per_word() as usize);
            // Reduce each column independently: outputs[r] = level, so
            // the reduction of column j's levels reconstructs word j.
            for (j, &w) in words.iter().enumerate() {
                let col: Vec<u64> = rows.iter().map(|r| r[j] as u64).collect();
                assert_eq!(slicer.reduce(&col).to_u64(), Some(w));
            }
        }
    }

    #[test]
    fn slice_wide_roundtrip() {
        let slicer = BitSlicer::new(2, 130);
        let w = (U256::ONE << 129u32) | U256::from(0xABCDu64);
        let rows = slicer.slice_wide(&[w]);
        assert_eq!(rows.len(), 65);
        let col: Vec<u64> = rows.iter().map(|r| r[0] as u64).collect();
        assert_eq!(slicer.reduce(&col), w);
    }

    #[test]
    fn levels_bounded_by_cell_bits() {
        let slicer = BitSlicer::new(3, 16);
        let rows = slicer.slice_words(&[0xFFFF, 0x1234]);
        for row in &rows {
            for &level in row {
                assert!(level < 8);
            }
        }
    }

    #[test]
    fn partial_top_row() {
        // 16-bit words on 3-bit cells: the top row holds only 1 bit.
        let slicer = BitSlicer::new(3, 16);
        let rows = slicer.slice_words(&[0xFFFF]);
        assert_eq!(rows[5][0], 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn word_too_wide_panics() {
        BitSlicer::new(2, 8).slice_words(&[0x100]);
    }

    #[test]
    fn reduce_with_dot_product_outputs() {
        // Row outputs are dot products, not single levels: the reduction
        // must still weight them by 2^{r·c}.
        let slicer = BitSlicer::new(2, 4);
        // outputs: row 0 → 7, row 1 → 5 ⇒ 7 + 5·4 = 27.
        assert_eq!(slicer.reduce(&[7, 5]).to_u64(), Some(27));
    }
}
