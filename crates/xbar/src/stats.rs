//! Statistical primitives: Gaussian and binomial sampling, binomial
//! PMF/CDF.
//!
//! Only the `rand` core crate is a sanctioned dependency, so the
//! distributions the simulator needs are implemented here: Box–Muller
//! Gaussians, inversion-method binomial draws (with a Gaussian
//! approximation fallback for large `n·p`), and an exact log-space
//! binomial CDF used by the §V-B5 row-error predictor.

use rand::Rng;

/// Natural log of `n!` for `n` up to [`MAX_LN_FACTORIAL_N`], computed by
/// accumulation (exact to f64 rounding).
const LN_FACTORIAL_TABLE_LEN: usize = 513;

/// Largest `n` supported by [`ln_factorial`].
pub const MAX_LN_FACTORIAL_N: u32 = (LN_FACTORIAL_TABLE_LEN - 1) as u32;

fn ln_factorial_table() -> &'static [f64; LN_FACTORIAL_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACTORIAL_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; LN_FACTORIAL_TABLE_LEN];
        for i in 1..LN_FACTORIAL_TABLE_LEN {
            t[i] = t[i - 1] + (i as f64).ln();
        }
        t
    })
}

/// `ln(n!)`.
///
/// # Panics
///
/// Panics if `n > MAX_LN_FACTORIAL_N` (rows have at most a few hundred
/// cells).
pub fn ln_factorial(n: u32) -> f64 {
    ln_factorial_table()[n as usize]
}

/// `ln C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n` or `n` exceeds the table.
pub fn ln_choose(n: u32, k: u32) -> f64 {
    assert!(k <= n, "k={k} > n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial probability mass `P[X = k]` for `X ~ B(n, p)`.
///
/// # Examples
///
/// ```
/// let p = xbar::stats::binomial_pmf(4, 2, 0.5);
/// assert!((p - 0.375).abs() < 1e-12);
/// ```
pub fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p={p} out of range");
    if k > n {
        return 0.0;
    }
    // lint: allow(float_eq, exact degenerate-distribution sentinel; ln(0) below needs p strictly inside (0,1))
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    // lint: allow(float_eq, exact degenerate-distribution sentinel; ln(1-p) below needs p strictly inside (0,1))
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial CDF `P[X ≤ k]`.
pub fn binomial_cdf(n: u32, k: u32, p: f64) -> f64 {
    if k >= n {
        return 1.0;
    }
    let mut total = 0.0;
    for i in 0..=k {
        total += binomial_pmf(n, i, p);
    }
    total.min(1.0)
}

/// Upper tail `P[X ≥ k]`.
pub fn binomial_sf(n: u32, k: u32, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    (1.0 - binomial_cdf(n, k - 1, p)).clamp(0.0, 1.0)
}

/// Draws a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, sigma²)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * sample_standard_normal(rng)
}

/// Paired Box–Muller generator: each pair of uniforms yields *two*
/// standard normals (`r·cos θ` now, `r·sin θ` cached for the next
/// call), halving the `ln`/`sqrt`/uniform cost per draw relative to
/// [`sample_standard_normal`] (which discards the sine term to keep
/// the historical one-draw-per-normal stream).
///
/// The output stream is a pure function of the call sequence against a
/// given RNG, so batched-kernel draws stay reproducible; it is *not*
/// the same stream as [`sample_standard_normal`], which is why the
/// batch-of-1 path never uses it.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let mut src = xbar::stats::NormalSource::new();
/// let a = src.next(&mut rng);
/// let b = src.next(&mut rng); // cached sine: no RNG advance
/// let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let mut src2 = xbar::stats::NormalSource::new();
/// assert_eq!((a, b), (src2.next(&mut rng2), src2.next(&mut rng2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSource {
    /// The sine-branch normal left over from the previous uniform pair.
    cached: Option<f64>,
}

impl NormalSource {
    /// An empty source: the first [`next`](NormalSource::next) draws a
    /// fresh uniform pair.
    pub fn new() -> NormalSource {
        NormalSource::default()
    }

    /// Returns the next standard normal, drawing two uniforms from
    /// `rng` on every other call.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        self.cached = Some(r * sin);
        r * cos
    }
}

/// Draws from `Binomial(n, p)`.
///
/// Uses CDF inversion (expected `O(n·p)` work) for small means and a
/// rounded, clamped Gaussian approximation when `n·p·(1−p) > 100`, which
/// is far beyond the accuracy the noise model needs.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "p={p} out of range");
    // lint: allow(float_eq, exact degenerate-distribution sentinel; draws must be deterministic 0 at p=0)
    if n == 0 || p == 0.0 {
        return 0;
    }
    // lint: allow(float_eq, exact degenerate-distribution sentinel; draws must be deterministic n at p=1)
    if p == 1.0 {
        return n;
    }
    // Work with p ≤ 0.5 and mirror, keeping inversion cheap.
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if var > 100.0 {
        let draw = sample_normal(rng, mean + 0.5, var.sqrt());
        return (draw.floor().max(0.0) as u32).min(n);
    }
    // CDF inversion.
    let u: f64 = rng.gen();
    let q = 1.0 - p;
    let ratio = p / q;
    let mut pmf = q.powi(n as i32);
    // lint: allow(float_eq, exact underflow-to-zero test: q^n denormal/zero would deadlock the inversion loop)
    if pmf == 0.0 {
        // Extremely small q^n (large n, moderate p): fall back to the
        // Gaussian approximation rather than loop on degenerate floats.
        let draw = sample_normal(rng, mean + 0.5, var.sqrt());
        return (draw.floor().max(0.0) as u32).min(n);
    }
    let mut cdf = pmf;
    let mut k = 0u32;
    while u > cdf && k < n {
        k += 1;
        pmf *= ratio * (n - k + 1) as f64 / k as f64;
        cdf += pmf;
    }
    k
}

/// Draws an exponential with the given mean.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x1234)
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(128, 64)
            - ((ln_factorial(128) - 2.0 * ln_factorial(64))))
        .abs()
            < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(1u32, 0.3), (10, 0.05), (128, 0.145), (128, 0.9)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binomial_pmf_edge_probabilities() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn binomial_cdf_and_sf_complement() {
        let n = 50;
        let p = 0.2;
        for k in 1..=n {
            let total = binomial_cdf(n, k - 1, p) + binomial_sf(n, k, p);
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert_eq!(binomial_cdf(10, 10, 0.3), 1.0);
        assert_eq!(binomial_sf(10, 0, 0.3), 1.0);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = rng();
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = sample_normal(&mut rng, 3.0, 2.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn binomial_sample_moments_small() {
        let mut rng = rng();
        let (n_trials, n, p) = (20_000, 128u32, 0.05);
        let mut sum = 0u64;
        for _ in 0..n_trials {
            let k = sample_binomial(&mut rng, n, p);
            assert!(k <= n);
            sum += k as u64;
        }
        let mean = sum as f64 / n_trials as f64;
        assert!((mean - 6.4).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn binomial_sample_mirrored_p() {
        let mut rng = rng();
        let mut sum = 0u64;
        let trials = 20_000;
        for _ in 0..trials {
            sum += sample_binomial(&mut rng, 40, 0.9) as u64;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 36.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_sample_gaussian_regime() {
        let mut rng = rng();
        let mut sum = 0u64;
        let trials = 20_000;
        for _ in 0..trials {
            let k = sample_binomial(&mut rng, 500, 0.5);
            assert!(k <= 500);
            sum += k as u64;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 250.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn binomial_sample_edges() {
        let mut rng = rng();
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn normal_source_moments_and_pairing() {
        let mut rng = rng();
        let mut src = NormalSource::new();
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = src.next(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_source_cosine_branch_matches_single_draw() {
        // The first (cosine-branch) draw consumes the same uniforms in
        // the same order as the historical single-normal sampler.
        let mut a = rng();
        let mut b = rng();
        let mut src = NormalSource::new();
        assert_eq!(src.next(&mut a), sample_standard_normal(&mut b));
    }

    #[test]
    fn exponential_sample_mean() {
        let mut rng = rng();
        let trials = 20_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            sum += sample_exponential(&mut rng, 2.5);
        }
        let mean = sum / trials as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }
}
