//! Write-endurance modeling and system-lifetime estimation (§II-C6).
//!
//! Memristor endurance spans 10⁶–10¹² writes depending on the material
//! stack; after its budget a cell stops switching and becomes a
//! stuck-at fault. Inference-only accelerators write rarely (model
//! deployments and re-calibrations), so lifetime is long but finite:
//! the Memristive Boltzmann Machine's authors compute a 1.5-year worst
//! case, and this paper notes that even then "faults must be handled
//! gracefully" — which is precisely what the split correction tables
//! do. This module provides the endurance statistics that close the
//! loop: how fast stuck-at faults accumulate under a write schedule,
//! feeding the fault rate that the data-aware codes absorb.
//!
//! Cell endurance is modeled as log-uniform between
//! [`min_writes`](EnduranceParams::min_writes) and
//! [`max_writes`](EnduranceParams::max_writes) (the decade-spanning
//! range reported across stacks), independent per cell.

use rand::Rng;

/// Endurance distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceParams {
    /// Minimum cell endurance (writes). 10⁶ per the weakest reported
    /// stacks.
    pub min_writes: f64,
    /// Maximum cell endurance (writes). 10¹² per the strongest stacks.
    pub max_writes: f64,
}

impl Default for EnduranceParams {
    fn default() -> EnduranceParams {
        EnduranceParams {
            min_writes: 1e6,
            max_writes: 1e12,
        }
    }
}

impl EnduranceParams {
    /// Probability that a cell has failed after `writes` full rewrites,
    /// under the log-uniform endurance distribution.
    ///
    /// # Examples
    ///
    /// ```
    /// use xbar::endurance::EnduranceParams;
    /// let p = EnduranceParams::default();
    /// assert_eq!(p.failure_probability(0.0), 0.0);
    /// // Half the decades exhausted → half the cells failed.
    /// assert!((p.failure_probability(1e9) - 0.5).abs() < 1e-9);
    /// assert_eq!(p.failure_probability(1e13), 1.0);
    /// ```
    pub fn failure_probability(&self, writes: f64) -> f64 {
        if writes <= self.min_writes {
            return 0.0;
        }
        if writes >= self.max_writes {
            return 1.0;
        }
        (writes.ln() - self.min_writes.ln()) / (self.max_writes.ln() - self.min_writes.ln())
    }

    /// The number of rewrites after which the expected stuck-cell
    /// fraction reaches `target` (the inverse of
    /// [`failure_probability`](EnduranceParams::failure_probability)).
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1)`.
    pub fn writes_for_failure_rate(&self, target: f64) -> f64 {
        assert!((0.0..1.0).contains(&target) && target > 0.0, "target in (0, 1)");
        (self.min_writes.ln()
            + target * (self.max_writes.ln() - self.min_writes.ln()))
        .exp()
    }

    /// System lifetime in years until the stuck-cell fraction reaches
    /// `target_fault_rate`, given `rewrites_per_day` full-array
    /// reprogrammings (model updates / recalibrations).
    ///
    /// With one rewrite per day and the default distribution, reaching
    /// the paper's 0.1 % fault-rate design point takes years — matching
    /// the "1.5 year worst case system lifetime" regime the paper cites
    /// for write-heavy training use, and far longer for inference-only
    /// deployment.
    pub fn lifetime_years(&self, rewrites_per_day: f64, target_fault_rate: f64) -> f64 {
        assert!(rewrites_per_day > 0.0, "need a positive write rate");
        let writes = self.writes_for_failure_rate(target_fault_rate);
        writes / rewrites_per_day / 365.25
    }

    /// Samples one cell's endurance budget (writes).
    pub fn sample_endurance<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        (self.min_writes.ln() + u * (self.max_writes.ln() - self.min_writes.ln())).exp()
    }
}

/// Tracks write wear for an array of cells and reports which have
/// exceeded their endurance.
#[derive(Debug, Clone)]
pub struct WearTracker {
    endurance: Vec<f64>,
    writes: u64,
}

impl WearTracker {
    /// Creates a tracker for `cells` cells with sampled endurance
    /// budgets.
    pub fn new<R: Rng + ?Sized>(cells: usize, params: &EnduranceParams, rng: &mut R) -> WearTracker {
        WearTracker {
            endurance: (0..cells).map(|_| params.sample_endurance(rng)).collect(),
            writes: 0,
        }
    }

    /// Records `n` full rewrites of the array.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Total rewrites recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Indices of cells that have exceeded their endurance.
    pub fn failed_cells(&self) -> Vec<usize> {
        self.endurance
            .iter()
            .enumerate()
            .filter(|(_, &e)| (self.writes as f64) >= e)
            .map(|(i, _)| i)
            .collect()
    }

    /// Current stuck-cell fraction.
    pub fn failure_rate(&self) -> f64 {
        self.failed_cells().len() as f64 / self.endurance.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn failure_probability_monotone() {
        let p = EnduranceParams::default();
        let mut prev = -1.0;
        for w in [0.0, 1e6, 1e7, 1e9, 1e11, 1e12, 1e13] {
            let f = p.failure_probability(w);
            assert!(f >= prev);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let p = EnduranceParams::default();
        for target in [0.001, 0.01, 0.5, 0.99] {
            let w = p.writes_for_failure_rate(target);
            assert!((p.failure_probability(w) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_design_point_lifetime() {
        // Reaching the Table I fault rate (0.1 %) takes ~10^6.04 writes;
        // at one full rewrite per day that is thousands of years — and
        // even at one rewrite per minute (training-like), years. The
        // graceful-degradation machinery matters long before wear-out
        // dominates.
        let p = EnduranceParams::default();
        let daily = p.lifetime_years(1.0, 0.001);
        assert!(daily > 100.0, "daily rewrite lifetime {daily} years");
        let per_minute = p.lifetime_years(60.0 * 24.0, 0.001);
        assert!(per_minute > 1.0, "per-minute rewrite lifetime {per_minute}");
    }

    #[test]
    fn sampled_endurance_within_range() {
        let p = EnduranceParams::default();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..100 {
            let e = p.sample_endurance(&mut rng);
            assert!((1e6..=1e12).contains(&e));
        }
    }

    #[test]
    fn wear_tracker_accumulates_failures() {
        let p = EnduranceParams::default();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut tracker = WearTracker::new(2000, &p, &mut rng);
        assert_eq!(tracker.failure_rate(), 0.0);
        tracker.record_writes(1_000_000_000); // 1e9 ≈ half the decades
        let rate = tracker.failure_rate();
        assert!(
            (0.4..0.6).contains(&rate),
            "rate {rate} after 1e9 writes"
        );
        assert_eq!(tracker.writes(), 1_000_000_000);
        assert_eq!(tracker.failed_cells().len(), (rate * 2000.0).round() as usize);
    }

    #[test]
    #[should_panic(expected = "target in (0, 1)")]
    fn writes_for_failure_rate_validates() {
        EnduranceParams::default().writes_for_failure_rate(1.5);
    }
}
