//! Programmed crossbar arrays and Monte-Carlo row readout.

use rand::Rng;

use crate::stats::{sample_binomial, sample_normal, NormalSource};
use crate::{Adc, DeviceParams, InputMask};

/// A programming request the crossbar fabric cannot satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrayError {
    /// A row held more cells than the 128-column crossbar width.
    RowTooWide {
        /// Index of the offending row.
        row: usize,
        /// Requested cell count.
        width: usize,
    },
    /// A target level exceeded the device's level count.
    LevelOutOfRange {
        /// Index of the offending row.
        row: usize,
        /// Column within the row.
        column: usize,
        /// The requested level.
        level: u32,
        /// Number of levels the device supports.
        levels: u32,
    },
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::RowTooWide { row, width } => write!(
                f,
                "row {row} holds {width} cells; rows hold at most {} cells",
                InputMask::MAX_WIDTH
            ),
            ArrayError::LevelOutOfRange {
                row,
                column,
                level,
                levels,
            } => write!(
                f,
                "row {row} column {column}: level {level} out of range (device has {levels} levels)"
            ),
        }
    }
}

impl std::error::Error for ArrayError {}

/// One programmed physical row: up to 128 cells.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalRow {
    /// Intended cell levels.
    target_levels: Vec<u32>,
    /// Actually stored levels (differ from target at stuck cells).
    actual_levels: Vec<u32>,
    /// Programmed conductances (S), including the RTN offset and the
    /// static programming error.
    conductance: Vec<f64>,
    /// Column bitmask per level of the *actual* stored data, for fast
    /// per-level active counts.
    level_masks: Vec<u128>,
    /// Columns with stuck-at faults.
    stuck_columns: Vec<u32>,
}

impl PhysicalRow {
    /// Number of cells in the row.
    pub fn width(&self) -> u32 {
        self.target_levels.len() as u32
    }

    /// Intended level of column `j`.
    pub fn target_level(&self, j: u32) -> u32 {
        self.target_levels[j as usize]
    }

    /// Actually stored level of column `j` (differs at stuck cells).
    pub fn actual_level(&self, j: u32) -> u32 {
        self.actual_levels[j as usize]
    }

    /// Columns pinned by stuck-at faults.
    pub fn stuck_columns(&self) -> &[u32] {
        &self.stuck_columns
    }

    /// Whether the row contains any stuck cell.
    pub fn has_stuck(&self) -> bool {
        !self.stuck_columns.is_empty()
    }

    /// Count of *driven* cells stored at `level`.
    pub fn active_count_at_level(&self, level: u32, mask: &InputMask) -> u32 {
        (self.level_masks[level as usize] & mask.bits()).count_ones()
    }

    /// Counts of driven cells per level.
    pub fn active_composition(&self, mask: &InputMask) -> Vec<u32> {
        (0..self.level_masks.len() as u32)
            .map(|l| self.active_count_at_level(l, mask))
            .collect()
    }
}

/// A frozen RTN trap configuration: one bit per cell, per row.
///
/// Produced by [`CrossbarArray::sample_rtn`] and consumed by
/// [`CrossbarArray::read_row_frozen`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtnSnapshot {
    traps: Vec<u128>,
}

impl RtnSnapshot {
    /// An empty snapshot with capacity for `rows` rows, intended as the
    /// reusable target of [`CrossbarArray::sample_rtn_into`].
    pub fn with_row_capacity(rows: usize) -> RtnSnapshot {
        RtnSnapshot {
            traps: Vec::with_capacity(rows),
        }
    }

    /// Number of trapped cells in row `row`.
    pub fn trapped_in_row(&self, row: usize) -> u32 {
        self.traps[row].count_ones()
    }

    /// Number of rows covered by the snapshot.
    pub fn rows(&self) -> usize {
        self.traps.len()
    }
}

/// A programmed crossbar array: a set of physical rows sharing the same
/// column inputs.
///
/// Programming applies, per cell:
///
/// 1. **stuck-at faults** with probability
///    [`fault_rate`](DeviceParams::fault_rate), pinning the cell at a
///    random level;
/// 2. the **RTN offset** (§IV): the target resistance is lowered by
///    `p_RTN · ΔR` so the *time-averaged* current matches the ideal; and
/// 3. the **programming error**: a uniform ±1 % residual on the final
///    resistance.
///
/// Reads sample RTN trap occupancy per level (binomial), thermal and
/// shot noise (Gaussian), and quantize through the shared [`Adc`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    rows: Vec<PhysicalRow>,
    params: DeviceParams,
    adc: Adc,
    /// Per-level nominal programmed resistance (after RTN offset).
    r_prog: Vec<f64>,
    /// Per-level RTN ΔR/R at the programmed resistance.
    delta_r: Vec<f64>,
    /// Per-level current drop (A) when a cell's trap is occupied.
    delta_i: Vec<f64>,
}

impl CrossbarArray {
    /// Programs an array from target cell levels, one inner `Vec` per
    /// physical row.
    ///
    /// # Panics
    ///
    /// Panics if any row is wider than 128 columns or any level exceeds
    /// the device's maximum; [`try_program`](CrossbarArray::try_program)
    /// is the recoverable variant.
    pub fn program<R: Rng + ?Sized>(
        rows: &[Vec<u32>],
        params: &DeviceParams,
        rng: &mut R,
    ) -> CrossbarArray {
        match CrossbarArray::try_program(rows, params, rng) {
            Ok(array) => array,
            Err(e) => panic!("{e}"),
        }
    }

    /// Programs an array from target cell levels, validating the request
    /// before touching the RNG.
    ///
    /// Validation draws nothing from `rng`, so for valid inputs this is
    /// bit-identical to [`program`](CrossbarArray::program) under a
    /// fixed seed.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError`] when a row is wider than 128 columns or a
    /// target level exceeds the device's level count.
    pub fn try_program<R: Rng + ?Sized>(
        rows: &[Vec<u32>],
        params: &DeviceParams,
        rng: &mut R,
    ) -> Result<CrossbarArray, ArrayError> {
        let levels = params.levels();
        for (i, targets) in rows.iter().enumerate() {
            if targets.len() > InputMask::MAX_WIDTH as usize {
                return Err(ArrayError::RowTooWide {
                    row: i,
                    width: targets.len(),
                });
            }
            if let Some((j, &level)) = targets.iter().enumerate().find(|(_, &l)| l >= levels) {
                return Err(ArrayError::LevelOutOfRange {
                    row: i,
                    column: j,
                    level,
                    levels,
                });
            }
        }
        let rtn = params.rtn();

        // Per-level programmed resistance with the RTN offset applied.
        let mut r_prog = Vec::with_capacity(levels as usize);
        let mut delta_r = Vec::with_capacity(levels as usize);
        let mut delta_i = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            let r_target = 1.0 / params.conductance(level);
            let d_target = rtn.delta_r_over_r(r_target);
            let offset = if params.rtn_offset {
                rtn.state_probability * d_target / (1.0 + d_target)
            } else {
                0.0
            };
            let r = r_target * (1.0 - offset);
            let d = rtn.delta_r_over_r(r);
            r_prog.push(r);
            delta_r.push(d);
            delta_i.push(params.v_read / r * (d / (1.0 + d)));
        }

        let rows = rows
            .iter()
            .map(|targets| {
                let mut actual_levels = Vec::with_capacity(targets.len());
                let mut conductance = Vec::with_capacity(targets.len());
                let mut stuck_columns = Vec::new();
                for (j, &target) in targets.iter().enumerate() {
                    let actual = if rng.gen::<f64>() < params.fault_rate {
                        stuck_columns.push(j as u32);
                        rng.gen_range(0..levels)
                    } else {
                        target
                    };
                    // Static programming residual: uniform within ±tol of
                    // the offset-adjusted target resistance.
                    let tol = params.programming_tolerance;
                    let r = r_prog[actual as usize] * (1.0 + rng.gen_range(-tol..=tol));
                    actual_levels.push(actual);
                    conductance.push(1.0 / r);
                }
                let mut level_masks = vec![0u128; levels as usize];
                for (j, &l) in actual_levels.iter().enumerate() {
                    level_masks[l as usize] |= 1 << j;
                }
                PhysicalRow {
                    target_levels: targets.clone(),
                    actual_levels,
                    conductance,
                    level_masks,
                    stuck_columns,
                }
            })
            .collect();

        Ok(CrossbarArray {
            rows,
            params: params.clone(),
            adc: Adc::new(params),
            r_prog,
            delta_r,
            delta_i,
        })
    }

    /// The device parameters the array was programmed with.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The shared row ADC.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// The physical rows.
    pub fn rows(&self) -> &[PhysicalRow] {
        &self.rows
    }

    /// Number of physical rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Per-level RTN current drop when trapped (A).
    pub fn rtn_delta_i(&self) -> &[f64] {
        &self.delta_i
    }

    /// Per-level RTN `ΔR/R` at the programmed (offset) resistance.
    pub fn rtn_delta_r(&self) -> &[f64] {
        &self.delta_r
    }

    /// Per-level nominal programmed resistance (Ω), after the RTN
    /// offset.
    pub fn programmed_resistance(&self) -> &[f64] {
        &self.r_prog
    }

    /// The noise-free, fault-free integer output of row `row`:
    /// `Σ_{j driven} target_level[j]`.
    pub fn ideal_row_output(&self, row: usize, mask: &InputMask) -> i64 {
        let r = &self.rows[row];
        mask.iter_ones()
            .map(|j| r.target_levels[j as usize] as i64)
            .sum()
    }

    /// Samples one noisy readout of row `row` under `mask` and returns
    /// the quantized integer output.
    ///
    /// Stuck-at faults and programming error are static (baked into the
    /// programmed conductances); RTN occupancy and thermal/shot noise
    /// are drawn fresh, modeling an independent read instant. For reads
    /// that are close together relative to the RTN dwell times (e.g. the
    /// 16 bit-serial cycles of one inference), use
    /// [`sample_rtn`](CrossbarArray::sample_rtn) +
    /// [`read_row_frozen`](CrossbarArray::read_row_frozen) instead.
    pub fn read_row<R: Rng + ?Sized>(&self, row: usize, mask: &InputMask, rng: &mut R) -> i64 {
        let current = self.sample_row_current(row, mask, rng);
        self.adc.quantize(current, mask) as i64
    }

    /// Samples a frozen RTN trap configuration for the whole array.
    ///
    /// RTN dwell times (τ ≈ 0.1 ms) are many orders of magnitude longer
    /// than one inference (µs), so every read within an inference sees
    /// the *same* trap occupancy: errors are few and persistent rather
    /// than independent per cycle — the regime the correction tables
    /// are designed for. Draw one snapshot per inference.
    pub fn sample_rtn<R: Rng + ?Sized>(&self, rng: &mut R) -> RtnSnapshot {
        let mut snapshot = RtnSnapshot { traps: Vec::new() };
        self.sample_rtn_into(rng, &mut snapshot);
        snapshot
    }

    /// Like [`CrossbarArray::sample_rtn`], but refills a caller-provided
    /// snapshot in place, reusing its trap buffer.
    ///
    /// Draws exactly the same random-number sequence as `sample_rtn`
    /// (row-major, one uniform per cell when the trap probability is
    /// nonzero), so the two are interchangeable under a fixed seed.
    pub fn sample_rtn_into<R: Rng + ?Sized>(&self, rng: &mut R, snapshot: &mut RtnSnapshot) {
        obs::counter!(xbar_rtn_snapshots).incr();
        let p = self.params.rtn_state_probability;
        snapshot.traps.clear();
        snapshot.traps.extend(self.rows.iter().map(|row| {
            let mut bits = 0u128;
            if p > 0.0 {
                for j in 0..row.width() {
                    if rng.gen::<f64>() < p {
                        bits |= 1 << j;
                    }
                }
            }
            bits
        }));
    }

    /// Reads row `row` under `mask` with the RTN occupancy frozen to
    /// `snapshot`; thermal and shot noise are still drawn fresh.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different array shape.
    pub fn read_row_frozen<R: Rng + ?Sized>(
        &self,
        row: usize,
        mask: &InputMask,
        snapshot: &RtnSnapshot,
        rng: &mut R,
    ) -> i64 {
        let r = &self.rows[row];
        let trap_bits = snapshot.traps[row];
        let mut g_total = 0.0;
        for j in mask.iter_ones() {
            g_total += r.conductance[j as usize];
        }
        let mut current = self.params.v_read * g_total;
        for (level, &delta_i) in self.delta_i.iter().enumerate() {
            let trapped =
                (r.level_masks[level] & trap_bits & mask.bits()).count_ones();
            current -= trapped as f64 * delta_i;
        }
        let sigma_thermal =
            (4.0 * crate::device::K_B * self.params.temperature * self.params.bandwidth * g_total)
                .sqrt();
        let sigma_shot = self.params.shot_sigma(current);
        let sigma = (sigma_thermal * sigma_thermal + sigma_shot * sigma_shot).sqrt();
        let noisy = sample_normal(rng, current, sigma);
        self.adc.quantize(noisy, mask) as i64
    }

    /// Reads *every* row under `mask` with the RTN occupancy frozen to
    /// `snapshot`, writing the quantized outputs into `out`.
    ///
    /// `out` is cleared and refilled with one entry per physical row; a
    /// buffer with sufficient capacity is reused without allocating.
    /// Rows are read in ascending order and each read draws the same
    /// noise sequence as [`CrossbarArray::read_row_frozen`], so under a
    /// fixed seed the bulk read is bit-identical to `row_count`
    /// individual frozen reads. This is the accelerator's group-read
    /// primitive: one call per bit-serial cycle per stack.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different array shape.
    pub fn read_rows_into<R: Rng + ?Sized>(
        &self,
        mask: &InputMask,
        snapshot: &RtnSnapshot,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) {
        obs::counter!(xbar_row_reads).add(self.rows.len() as u64);
        out.clear();
        let thermal_factor =
            4.0 * crate::device::K_B * self.params.temperature * self.params.bandwidth;
        for (row, r) in self.rows.iter().enumerate() {
            let trap_bits = snapshot.traps[row];
            let mut g_total = 0.0;
            for j in mask.iter_ones() {
                g_total += r.conductance[j as usize];
            }
            let mut current = self.params.v_read * g_total;
            for (level, &delta_i) in self.delta_i.iter().enumerate() {
                let trapped =
                    (r.level_masks[level] & trap_bits & mask.bits()).count_ones();
                current -= trapped as f64 * delta_i;
            }
            let sigma_thermal = (thermal_factor * g_total).sqrt();
            let sigma_shot = self.params.shot_sigma(current);
            let sigma = (sigma_thermal * sigma_thermal + sigma_shot * sigma_shot).sqrt();
            let noisy = sample_normal(rng, current, sigma);
            out.push(self.adc.quantize(noisy, mask) as u64);
        }
    }

    /// Computes, for every row and every input-bit plane, the driven
    /// conductance sum `Σ_{j : bit t of values[j] set} conductance[j]`,
    /// in one ascending-column pass per row.
    ///
    /// `values` holds one widened input word per column; `out` is
    /// cleared and refilled t-major (`out[t · row_count + row]`), so
    /// the per-bit slice consumed by one bit-serial cycle is
    /// contiguous. Accumulation order is ascending `j` with a
    /// branchless `g · bit` term; since `g · 1.0 = g`, `g · 0.0 = +0.0`
    /// and adding `+0.0` to a non-negative partial sum is an exact
    /// identity, each plane sum is bit-identical to the
    /// [`iter_ones`](InputMask::iter_ones)-order sum the scalar read
    /// path computes. This is the batched kernel's replacement for
    /// per-(bit, row) mask scans: one pass serves all `input_bits`
    /// planes and every vector's reads against them.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits > 16` or `values` is narrower than a row.
    pub fn conductance_planes_into(&self, values: &[u64], input_bits: u32, out: &mut Vec<f64>) {
        assert!(input_bits <= 16, "input_bits {input_bits} > 16");
        let rows = self.rows.len();
        out.clear();
        out.resize(input_bits as usize * rows, 0.0);
        if input_bits == 16 {
            // The production width: a fixed-bound kernel the compiler
            // can unroll, with an AVX2 lane-parallel variant when the
            // host supports it (same per-plane add order either way).
            for (row, r) in self.rows.iter().enumerate() {
                assert!(values.len() >= r.conductance.len(), "values narrower than row");
                let acc = planes16(&r.conductance, values);
                for (t, &a) in acc.iter().enumerate() {
                    out[t * rows + row] = a;
                }
            }
            return;
        }
        for (row, r) in self.rows.iter().enumerate() {
            assert!(values.len() >= r.conductance.len(), "values narrower than row");
            let mut acc = [0.0f64; 16];
            for (&g, &v) in r.conductance.iter().zip(values) {
                for (t, a) in acc.iter_mut().take(input_bits as usize).enumerate() {
                    *a += g * ((v >> t) & 1) as f64;
                }
            }
            for (t, &a) in acc.iter().take(input_bits as usize).enumerate() {
                out[t * rows + row] = a;
            }
        }
    }

    /// Intersects a frozen RTN snapshot with every row's per-level
    /// column masks, keeping only the non-empty intersections as a
    /// sparse CSR table: `offsets[row]..offsets[row + 1]` indexes
    /// `entries`, each entry a `(Δi, trapped-column mask)` pair in
    /// ascending-level order.
    ///
    /// The batched kernel hoists this once per (stack, batch). Under
    /// realistic trap occupancy most `(row, level)` intersections are
    /// empty, so each subsequent read walks a handful of entries per
    /// row instead of every level — and an empty level would only have
    /// subtracted an exact `+0.0`, so skipping it leaves the current
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different array shape.
    pub fn trap_level_sparse_into(
        &self,
        snapshot: &RtnSnapshot,
        offsets: &mut Vec<u32>,
        entries: &mut Vec<(f64, u128)>,
    ) {
        offsets.clear();
        entries.clear();
        offsets.push(0);
        for (row, r) in self.rows.iter().enumerate() {
            let traps = snapshot.traps[row];
            for (level, &m) in r.level_masks.iter().enumerate() {
                let masked = m & traps;
                if masked != 0 {
                    entries.push((self.delta_i[level], masked));
                }
            }
            offsets.push(entries.len() as u32);
        }
    }

    /// Reads every row for one bit-serial cycle of the *batched*
    /// kernel, using precomputed per-row conductance sums
    /// (`g_totals`, one bit-plane slice of
    /// [`conductance_planes_into`](CrossbarArray::conductance_planes_into))
    /// and the hoisted sparse trap table
    /// ([`trap_level_sparse_into`](CrossbarArray::trap_level_sparse_into)).
    ///
    /// Differences from [`read_rows_into`](CrossbarArray::read_rows_into),
    /// all invisible when every noise source is disabled and pinned by
    /// the batched goldens otherwise:
    ///
    /// - Gaussian noise comes from the paired [`NormalSource`] (a
    ///   different — equally valid — stream than the single-draw
    ///   sampler; one draw per row, ascending, as before);
    /// - the noise variance is assembled as
    ///   `thermal_factor·g + 2·q·|I|·BW` under a single square root
    ///   instead of squaring two separately rooted sigmas;
    /// - quantization divides by precomputed reciprocal
    ///   (`Adc::quantize_fast`).
    ///
    /// With noise off, every difference collapses: `σ = 0` exactly,
    /// and the current equals the scalar path's bitwise, so outputs
    /// match [`read_rows_into`](CrossbarArray::read_rows_into)
    /// integer-for-integer.
    ///
    /// # Panics
    ///
    /// Panics if `g_totals` or the trap table do not cover every row.
    #[allow(clippy::too_many_arguments)]
    pub fn read_rows_amortized_into<R: Rng + ?Sized>(
        &self,
        mask: &InputMask,
        g_totals: &[f64],
        trap_offsets: &[u32],
        trap_entries: &[(f64, u128)],
        normals: &mut NormalSource,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) {
        obs::counter!(xbar_row_reads).add(self.rows.len() as u64);
        let rows = self.rows.len();
        assert!(g_totals.len() >= rows, "g_totals narrower than array");
        assert!(trap_offsets.len() > rows, "trap_offsets narrower than array");
        out.clear();
        let active = mask.count_ones();
        let mask_bits = mask.bits();
        let thermal_factor =
            4.0 * crate::device::K_B * self.params.temperature * self.params.bandwidth;
        let shot_factor = 2.0 * crate::device::Q_E * self.params.bandwidth;
        for row in 0..rows {
            let g = g_totals[row];
            let mut current = self.params.v_read * g;
            let span = trap_offsets[row] as usize..trap_offsets[row + 1] as usize;
            for &(delta_i, m) in &trap_entries[span] {
                let trapped = (m & mask_bits).count_ones();
                current -= trapped as f64 * delta_i;
            }
            let sigma = (thermal_factor * g + shot_factor * current.abs()).sqrt();
            let noisy = current + sigma * normals.next(rng);
            out.push(self.adc.quantize_fast(noisy, active) as u64);
        }
    }

    /// Samples the raw analog row current (A) — used by the transient
    /// simulator and for distribution studies.
    pub fn sample_row_current<R: Rng + ?Sized>(
        &self,
        row: usize,
        mask: &InputMask,
        rng: &mut R,
    ) -> f64 {
        let r = &self.rows[row];
        // Deterministic programmed current of the driven cells.
        let mut g_total = 0.0;
        for j in mask.iter_ones() {
            g_total += r.conductance[j as usize];
        }
        let mut current = self.params.v_read * g_total;

        // RTN: per level, draw how many driven cells are trapped.
        let p = self.params.rtn_state_probability;
        for (level, &delta_i) in self.delta_i.iter().enumerate() {
            let n = r.active_count_at_level(level as u32, mask);
            if n == 0 {
                continue;
            }
            let trapped = sample_binomial(rng, n, p);
            current -= trapped as f64 * delta_i;
        }

        // Thermal noise of the driven resistors plus shot noise of the
        // aggregate current.
        let sigma_thermal =
            (4.0 * crate::device::K_B * self.params.temperature * self.params.bandwidth * g_total)
                .sqrt();
        let sigma_shot = self.params.shot_sigma(current);
        let sigma = (sigma_thermal * sigma_thermal + sigma_shot * sigma_shot).sqrt();
        sample_normal(rng, current, sigma)
    }

    /// The *expected* current of row `row` under `mask` (over RTN and
    /// noise), reflecting the RTN-offset calibration.
    pub fn expected_row_current(&self, row: usize, mask: &InputMask) -> f64 {
        let r = &self.rows[row];
        let mut current = 0.0;
        for j in mask.iter_ones() {
            current += self.params.v_read * r.conductance[j as usize];
        }
        let p = self.params.rtn_state_probability;
        for (level, &delta_i) in self.delta_i.iter().enumerate() {
            let n = r.active_count_at_level(level as u32, mask);
            current -= n as f64 * p * delta_i;
        }
        current
    }
}


/// One row's 16 bit-plane conductance sums, each accumulated in
/// ascending column order. `g · bit` is computed as
/// `f64::from_bits(g.to_bits() & bit.wrapping_neg())` — exactly `g`
/// when the bit is set and exactly `+0.0` otherwise, so the result is
/// bit-identical to the multiply form (and to the scalar path's
/// skip-the-zeros scan, since adding `+0.0` to a non-negative partial
/// sum is an identity).
fn planes16(conductance: &[f64], values: &[u64]) -> [f64; 16] {
    let mut acc = [0.0f64; 16];
    for (&g, &v) in conductance.iter().zip(values) {
        let gb = g.to_bits();
        for (t, a) in acc.iter_mut().enumerate() {
            *a += f64::from_bits(gb & ((v >> t) & 1).wrapping_neg());
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    fn clean_params() -> DeviceParams {
        DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            ..DeviceParams::default()
        }
    }

    #[test]
    fn ideal_output_sums_driven_levels() {
        let mut rng = rng();
        let array = CrossbarArray::program(&[vec![3, 1, 0, 2]], &clean_params(), &mut rng);
        assert_eq!(array.ideal_row_output(0, &InputMask::all_ones(4)), 6);
        let mut mask = InputMask::zeros(4);
        mask.set(0, true);
        mask.set(3, true);
        assert_eq!(array.ideal_row_output(0, &mask), 5);
        assert_eq!(array.ideal_row_output(0, &InputMask::zeros(4)), 0);
    }

    #[test]
    fn noiseless_read_matches_ideal() {
        // With every noise source disabled the readout is exact.
        let params = DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            rtn_state_probability: 0.0,
            bandwidth: 0.0, // kills thermal and shot noise
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let levels = vec![vec![3, 2, 1, 0, 3, 3, 0, 1]];
        let array = CrossbarArray::program(&levels, &params, &mut rng);
        let mask = InputMask::all_ones(8);
        for _ in 0..10 {
            assert_eq!(
                array.read_row(0, &mask, &mut rng),
                array.ideal_row_output(0, &mask)
            );
        }
    }

    #[test]
    fn reads_stay_near_ideal_with_noise() {
        let mut rng = rng();
        let levels = vec![(0..128).map(|i| i % 4).collect::<Vec<u32>>()];
        let array = CrossbarArray::program(&levels, &clean_params(), &mut rng);
        let mask = InputMask::all_ones(128);
        let ideal = array.ideal_row_output(0, &mask);
        for _ in 0..50 {
            let out = array.read_row(0, &mask, &mut rng);
            assert!((out - ideal).abs() <= 8, "out {out} ideal {ideal}");
        }
    }

    #[test]
    fn error_rate_roughly_matches_paper_figure_7() {
        // 128 cells, 2 bits per cell, equal state occupancy: the paper's
        // transient analysis reports ~14.5 % row error rate. Our Monte
        // Carlo should land in the same regime (a few percent to ~25 %).
        let mut rng = rng();
        let levels = vec![(0..128).map(|i| i % 4).collect::<Vec<u32>>()];
        let array = CrossbarArray::program(&levels, &clean_params(), &mut rng);
        let mask = InputMask::all_ones(128);
        let ideal = array.ideal_row_output(0, &mask);
        let trials = 4000;
        let errors = (0..trials)
            .filter(|_| array.read_row(0, &mask, &mut rng) != ideal)
            .count();
        let rate = errors as f64 / trials as f64;
        assert!(
            (0.02..0.40).contains(&rate),
            "row error rate {rate} outside plausible band"
        );
    }

    #[test]
    fn rtn_offset_centers_expected_current() {
        let mut rng = rng();
        let levels = vec![vec![3u32; 64]];
        let array = CrossbarArray::program(&levels, &clean_params(), &mut rng);
        let mask = InputMask::all_ones(64);
        let expected = array.expected_row_current(0, &mask);
        let ideal = array.adc().ideal_current(array.ideal_row_output(0, &mask) as u32, &mask);
        // The offset keeps the mean within a fraction of an LSB of ideal.
        assert!(
            (expected - ideal).abs() < 0.5 * array.adc().lsb(),
            "expected {expected} vs ideal {ideal}"
        );
    }

    #[test]
    fn stuck_cells_change_stored_level() {
        let params = DeviceParams {
            fault_rate: 1.0, // every cell stuck
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let array = CrossbarArray::program(&[vec![1, 2, 3, 0]], &params, &mut rng);
        let row = &array.rows()[0];
        assert_eq!(row.stuck_columns().len(), 4);
        assert!(row.has_stuck());
        // Targets preserved for reporting.
        assert_eq!(row.target_level(2), 3);
    }

    #[test]
    fn fault_rate_statistics() {
        let mut rng = rng();
        let levels: Vec<Vec<u32>> = (0..100).map(|_| vec![1u32; 128]).collect();
        let array = CrossbarArray::program(&levels, &DeviceParams::default(), &mut rng);
        let stuck: usize = array.rows().iter().map(|r| r.stuck_columns().len()).sum();
        // 12800 cells × 0.1 % ≈ 13 expected.
        assert!((2..=40).contains(&stuck), "stuck count {stuck}");
    }

    #[test]
    fn frozen_rtn_is_persistent() {
        // With zero thermal/shot noise, repeated frozen reads of the
        // same snapshot give identical outputs, while fresh snapshots
        // vary.
        let params = DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            bandwidth: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let levels = vec![(0..128).map(|i| i % 4).collect::<Vec<u32>>()];
        let array = CrossbarArray::program(&levels, &params, &mut rng);
        let mask = InputMask::all_ones(128);
        let snap = array.sample_rtn(&mut rng);
        let first = array.read_row_frozen(0, &mask, &snap, &mut rng);
        for _ in 0..5 {
            assert_eq!(array.read_row_frozen(0, &mask, &snap, &mut rng), first);
        }
        // Across snapshots, outputs differ at least sometimes.
        let varied = (0..20).any(|_| {
            let s = array.sample_rtn(&mut rng);
            array.read_row_frozen(0, &mask, &s, &mut rng) != first
        });
        assert!(varied);
    }

    #[test]
    fn snapshot_occupancy_matches_probability() {
        let mut rng = rng();
        let levels = vec![vec![3u32; 128]; 20];
        let array = CrossbarArray::program(&levels, &DeviceParams::default(), &mut rng);
        let snap = array.sample_rtn(&mut rng);
        assert_eq!(snap.rows(), 20);
        let trapped: u32 = (0..20).map(|r| snap.trapped_in_row(r)).sum();
        let frac = trapped as f64 / (20.0 * 128.0);
        assert!((frac - 0.25).abs() < 0.06, "trapped fraction {frac}");
    }

    #[test]
    fn frozen_noiseless_matches_ideal_when_untrapped() {
        let params = DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            bandwidth: 0.0,
            rtn_state_probability: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let levels = vec![vec![1, 2, 3, 0]];
        let array = CrossbarArray::program(&levels, &params, &mut rng);
        let mask = InputMask::all_ones(4);
        let snap = array.sample_rtn(&mut rng);
        assert_eq!(
            array.read_row_frozen(0, &mask, &snap, &mut rng),
            array.ideal_row_output(0, &mask)
        );
    }

    #[test]
    fn try_program_rejects_invalid_requests() {
        let params = clean_params();
        let wide = vec![vec![0u32; 200]];
        assert_eq!(
            CrossbarArray::try_program(&wide, &params, &mut rng()).unwrap_err(),
            ArrayError::RowTooWide { row: 0, width: 200 }
        );
        let bad_level = vec![vec![0, 1], vec![2, 9]];
        let err = CrossbarArray::try_program(&bad_level, &params, &mut rng()).unwrap_err();
        assert_eq!(
            err,
            ArrayError::LevelOutOfRange {
                row: 1,
                column: 1,
                level: 9,
                levels: params.levels(),
            }
        );
        assert!(err.to_string().contains("level 9 out of range"));
    }

    #[test]
    fn try_program_matches_program_under_fixed_seed() {
        // Validation draws nothing, so both constructors consume the
        // same RNG stream and produce identical arrays.
        let levels = vec![(0..64).map(|i| i % 4).collect::<Vec<u32>>(); 3];
        let a = CrossbarArray::program(&levels, &DeviceParams::default(), &mut rng());
        let b = CrossbarArray::try_program(&levels, &DeviceParams::default(), &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn conductance_planes_match_mask_scans_bitwise() {
        let mut rng = rng();
        let levels: Vec<Vec<u32>> = (0..5).map(|r| (0..32).map(|i| (i + r) % 4).collect()).collect();
        let array = CrossbarArray::program(&levels, &DeviceParams::default(), &mut rng);
        let values: Vec<u64> = (0..32).map(|j| (j as u64).wrapping_mul(2654435761) % 65536).collect();
        let mut planes = Vec::new();
        array.conductance_planes_into(&values, 16, &mut planes);
        for t in 0..16u32 {
            let mask = InputMask::from_bit_of(&values, t);
            for (row, r) in array.rows().iter().enumerate() {
                let mut g = 0.0;
                for j in mask.iter_ones() {
                    g += r.conductance[j as usize];
                }
                // Exact equality: the branchless plane pass adds only
                // `g·1.0` and `+0.0` terms in the same ascending order.
                assert_eq!(planes[t as usize * 5 + row], g, "t={t} row={row}");
            }
        }
    }

    #[test]
    fn trap_level_sparse_covers_snapshot() {
        let mut rng = rng();
        let levels = vec![vec![3u32; 64]; 4];
        let array = CrossbarArray::program(&levels, &DeviceParams::default(), &mut rng);
        let snap = array.sample_rtn(&mut rng);
        let mut offsets = Vec::new();
        let mut entries = Vec::new();
        array.trap_level_sparse_into(&snap, &mut offsets, &mut entries);
        assert_eq!(offsets.len(), 4 + 1);
        let delta_i = array.rtn_delta_i();
        for (row, r) in array.rows().iter().enumerate() {
            // The row's entries are exactly its non-empty (level, mask)
            // intersections, in ascending-level order.
            let expected: Vec<(f64, u128)> = delta_i
                .iter()
                .zip(r.level_masks.iter())
                .filter_map(|(&d, &m)| {
                    let masked = m & snap.traps[row];
                    (masked != 0).then_some((d, masked))
                })
                .collect();
            let got = &entries[offsets[row] as usize..offsets[row + 1] as usize];
            assert_eq!(got, expected.as_slice(), "row={row}");
        }
    }

    #[test]
    fn amortized_read_matches_scalar_read_when_noiseless() {
        let params = DeviceParams {
            fault_rate: 0.0,
            programming_tolerance: 0.0,
            rtn_state_probability: 0.0,
            bandwidth: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let levels: Vec<Vec<u32>> = (0..6).map(|r| (0..48).map(|i| (i * 7 + r) % 4).collect()).collect();
        let array = CrossbarArray::program(&levels, &params, &mut rng);
        let values: Vec<u64> = (0..48).map(|j| (j as u64).wrapping_mul(517) % 65536).collect();
        let snap = array.sample_rtn(&mut rng);
        let mut planes = Vec::new();
        array.conductance_planes_into(&values, 16, &mut planes);
        let mut offsets = Vec::new();
        let mut entries = Vec::new();
        array.trap_level_sparse_into(&snap, &mut offsets, &mut entries);
        let mut normals = NormalSource::new();
        let mut fast = Vec::new();
        let mut scalar = Vec::new();
        for t in 0..16u32 {
            let mask = InputMask::from_bit_of(&values, t);
            array.read_rows_amortized_into(
                &mask,
                &planes[t as usize * 6..(t as usize + 1) * 6],
                &offsets,
                &entries,
                &mut normals,
                &mut rng,
                &mut fast,
            );
            array.read_rows_into(&mask, &snap, &mut rng, &mut scalar);
            assert_eq!(fast, scalar, "bit {t}");
        }
    }

    #[test]
    fn amortized_read_stays_near_ideal_with_noise() {
        let mut rng = rng();
        let levels = vec![(0..128).map(|i| i % 4).collect::<Vec<u32>>()];
        let array = CrossbarArray::program(&levels, &clean_params(), &mut rng);
        let values = vec![1u64; 128]; // bit 0 drives every column
        let mask = InputMask::from_bit_of(&values, 0);
        let ideal = array.ideal_row_output(0, &mask);
        let mut planes = Vec::new();
        array.conductance_planes_into(&values, 1, &mut planes);
        let mut normals = NormalSource::new();
        let mut out = Vec::new();
        let mut offsets = Vec::new();
        let mut entries = Vec::new();
        for _ in 0..50 {
            let snap = array.sample_rtn(&mut rng);
            array.trap_level_sparse_into(&snap, &mut offsets, &mut entries);
            array.read_rows_amortized_into(&mask, &planes, &offsets, &entries, &mut normals, &mut rng, &mut out);
            let got = out[0] as i64;
            assert!((got - ideal).abs() <= 8, "out {got} ideal {ideal}");
        }
    }

    #[test]
    fn composition_counts_active_cells() {
        let mut rng = rng();
        let array = CrossbarArray::program(&[vec![0, 1, 1, 3, 2]], &clean_params(), &mut rng);
        let comp = array.rows()[0].active_composition(&InputMask::all_ones(5));
        assert_eq!(comp, vec![1, 2, 1, 1]);
        let mut mask = InputMask::zeros(5);
        mask.set(1, true);
        mask.set(3, true);
        let comp = array.rows()[0].active_composition(&mask);
        assert_eq!(comp, vec![0, 1, 0, 1]);
    }
}
