//! Microbenchmarks for the arithmetic-code hot paths: encode, the three
//! decode outcomes, data-aware table construction, and the A search.

use ancode::data_aware::{build_table, DataAwareConfig};
use ancode::{AbnCode, CorrectionPolicy, RowError, RowErrorModel};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wideint::{I256, U256};

fn model(rows: u32) -> RowErrorModel {
    RowErrorModel::new(
        (0..rows)
            .map(|r| RowError::symmetric(r * 2, 0.01 + 0.002 * r as f64))
            .collect(),
        16,
    )
}

fn bench_codes(c: &mut Criterion) {
    let code = AbnCode::classic(167, 3, 128).unwrap();
    let x = U256::from(0x1234_5678_9ABC_DEF0u64) << 60u32;
    let clean = code.encode(x).unwrap();
    let errored = I256::from(clean) + I256::from_i128(1 << 20);

    c.bench_function("encode_128b", |b| {
        b.iter(|| code.encode(black_box(x)).unwrap())
    });
    c.bench_function("decode_clean_128b", |b| {
        b.iter(|| code.decode(black_box(clean.into()), CorrectionPolicy::Revert))
    });
    c.bench_function("decode_errored_128b", |b| {
        b.iter(|| code.decode(black_box(errored), CorrectionPolicy::Revert))
    });

    let m = model(34);
    let config = DataAwareConfig::default();
    c.bench_function("data_aware_table_a167", |b| {
        b.iter(|| build_table(167, black_box(&m), &config).unwrap())
    });

    c.bench_function("a_search_hardware_5", |b| {
        b.iter(|| {
            ancode::search::select_a_hardware(9, 3, 128, &config, |_| Ok(model(34))).unwrap()
        })
    });

    c.bench_function("min_single_error_a_39b", |b| {
        b.iter(|| ancode::min_single_error_a(black_box(39)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_codes
}
criterion_main!(benches);
