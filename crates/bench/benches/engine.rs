//! End-to-end MVM throughput of the accelerator engine per protection
//! scheme (one 16×128 matrix, 16-bit inputs, 2-bit cells), single-vector
//! and batched (`_b8`/`_b32` rows measure one whole batched pass; divide
//! by the batch for per-vector cost).

use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neural::{MvmEngine, MvmEngineProvider, QuantizedMatrix, Tensor};

fn bench_engine(c: &mut Criterion) {
    let weights: Vec<f32> = (0..16 * 128)
        .map(|i| ((i as f32) * 0.173).sin() * 0.7)
        .collect();
    let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![16, 128], weights));
    let input: Vec<u16> = (0..128).map(|j| (j as u16).wrapping_mul(517)).collect();

    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ] {
        let label = scheme.label();
        let config = AccelConfig::new(scheme).with_fault_rate(0.0);
        let provider = CrossbarProvider::new(config, 5);
        let mut engine = provider.build(&matrix);
        c.bench_function(&format!("mvm_16x128_{label}"), |b| {
            b.iter(|| engine.mvm(black_box(&input)))
        });
    }

    // Batched passes: one engine call evaluates `batch` distinct input
    // vectors, amortizing the RTN snapshot and row read-outs per stack.
    for batch in [8usize, 32] {
        let batch_input: Vec<u16> = (0..batch)
            .flat_map(|v| {
                (0..128).map(move |j| {
                    (j as u16)
                        .wrapping_mul(517)
                        .wrapping_add((v as u16).wrapping_mul(8191))
                })
            })
            .collect();
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::data_aware(9),
        ] {
            let label = scheme.label();
            let config = AccelConfig::new(scheme)
                .with_fault_rate(0.0)
                .with_batch(batch);
            let provider = CrossbarProvider::new(config, 5);
            let mut engine = provider.build(&matrix);
            let mut out = Vec::new();
            c.bench_function(&format!("mvm_16x128_{label}_b{batch}"), |b| {
                b.iter(|| engine.mvm_batch_into(black_box(&batch_input), batch, &mut out))
            });
        }
    }

    // Mapping (programming + A search) cost.
    let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
    c.bench_function("program_and_search_16x128", |b| {
        b.iter(|| {
            let provider = CrossbarProvider::new(config.clone(), 6);
            provider.build(black_box(&matrix))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_engine
}
criterion_main!(benches);
