//! Microbenchmarks for the crossbar substrate: programming, row reads
//! (independent and frozen-RTN), reduction, and error-rate prediction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand_chacha::rand_core::SeedableRng;
use xbar::{rowerr, BitSlicer, CrossbarArray, DeviceParams, InputMask};

fn bench_crossbar(c: &mut Criterion) {
    let params = DeviceParams::default();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let levels: Vec<Vec<u32>> = (0..69)
        .map(|r| (0..128).map(|j| ((r + j) % 4) as u32).collect())
        .collect();
    let array = CrossbarArray::program(&levels, &params, &mut rng);
    let mask = InputMask::all_ones(128);

    c.bench_function("program_69x128", |b| {
        b.iter(|| CrossbarArray::program(black_box(&levels), &params, &mut rng))
    });
    c.bench_function("read_row_independent", |b| {
        b.iter(|| array.read_row(black_box(0), &mask, &mut rng))
    });
    let snap = array.sample_rtn(&mut rng);
    c.bench_function("read_row_frozen", |b| {
        b.iter(|| array.read_row_frozen(black_box(0), &mask, &snap, &mut rng))
    });
    c.bench_function("sample_rtn_69x128", |b| {
        b.iter(|| array.sample_rtn(&mut rng))
    });

    let slicer = BitSlicer::new(2, 138);
    let outputs: Vec<u64> = (0..69).map(|r| (r * 37 % 256) as u64).collect();
    c.bench_function("reduce_69_rows", |b| {
        b.iter(|| slicer.reduce(black_box(&outputs)))
    });

    c.bench_function("predict_row_error", |b| {
        b.iter(|| rowerr::predict_composition(black_box(&[32, 32, 32, 32]), &params))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_crossbar
}
criterion_main!(benches);
