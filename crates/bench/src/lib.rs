//! Shared experiment harness for the table/figure regenerators.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the
//! paper (see DESIGN.md §2 for the index). This library holds what they
//! share: workload training with on-disk weight caching, scheme grids,
//! result tables, and JSON emission into `results/`.
//!
//! # Environment knobs
//!
//! - `REPRO_SAMPLES` — Monte-Carlo test examples per configuration
//!   (default 24; the paper uses 1000 — set `REPRO_SAMPLES=1000` for a
//!   full run).
//! - `REPRO_THREADS` — worker threads (default: available parallelism).
//! - `REPRO_TRAIN` — training examples per workload (default 4000).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use accel::{AccelConfig, ProtectionScheme};
use neural::data::Dataset;
use neural::{data, models, Network, QuantizedNetwork, SavedWeights};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Monte-Carlo samples per configuration.
pub fn samples() -> usize {
    std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Worker thread count.
pub fn threads() -> usize {
    std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Training-set size per workload.
pub fn train_size() -> usize {
    std::env::var("REPRO_TRAIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000)
}

/// Directory where regenerators drop JSON results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON result artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    println!("[results] wrote {}", path.display());
}

/// A trained workload: float network, quantized lowering, and its
/// held-out test set.
pub struct Workload {
    /// Workload name (`mlp1`, `mlp2`, `cnn1`, `alexnet`).
    pub name: &'static str,
    /// The trained float network.
    pub network: Network,
    /// The 16-bit fixed-point lowering.
    pub quantized: QuantizedNetwork,
    /// Held-out test examples.
    pub test: Dataset,
    /// Float software misclassification on the test set.
    pub software_error: f64,
}

/// Difficulty of the ILSVRC stand-in, calibrated so the AlexNet proxy's
/// software top-1 misclassification lands in the paper's ~43 % regime.
pub const ALEXNET_DIFFICULTY: f32 = 0.85;

/// Trains (or loads from cache) one of the evaluated workloads.
///
/// Weight caches live in `results/weights/` keyed by workload name and
/// training size, so repeated regenerator runs skip training.
pub fn workload(name: &'static str) -> Workload {
    let n_train = train_size();
    let n_test = samples();
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);

    let (mut network, mut train, test, epochs, lr) = match name {
        "mlp1" => {
            let net = models::mlp1(&mut rng);
            (net, data::digits(n_train, 42), data::digits(n_test, 904_223), 8, 0.1)
        }
        "mlp2" => {
            let net = models::mlp2(&mut rng);
            (net, data::digits(n_train, 42), data::digits(n_test, 904_223), 8, 0.1)
        }
        "cnn1" => {
            let net = models::cnn1(&mut rng);
            // Convolutions train slower per example; a smaller set
            // converges on the digits task.
            let n = n_train.min(2500);
            (net, data::digits(n, 42), data::digits(n_test, 904_223), 6, 0.05)
        }
        "alexnet" => {
            let net = models::alexnet_proxy(&mut rng);
            let n = n_train.min(4000);
            (
                net,
                data::shapes(n, 42, ALEXNET_DIFFICULTY),
                data::shapes(n_test, 904_223, ALEXNET_DIFFICULTY),
                10,
                0.05,
            )
        }
        other => panic!("unknown workload {other}"),
    };

    let cache = results_dir()
        .join("weights")
        .join(format!("{name}-{}.json", train.len()));
    if let Ok(saved) = SavedWeights::load(&cache) {
        network.import_weights(&saved);
        eprintln!("[{name}] loaded cached weights from {}", cache.display());
    } else {
        eprintln!(
            "[{name}] training on {} examples ({} epochs)…",
            train.len(),
            epochs
        );
        let started = Instant::now();
        data::shuffle(&mut train, 7);
        for epoch in 0..epochs {
            let eta = if epoch * 3 >= epochs * 2 { lr / 3.0 } else { lr };
            let stats = network.train_epoch(&train.images, &train.labels, 32, eta);
            eprintln!(
                "[{name}] epoch {epoch}: loss {:.4} acc {:.3}",
                stats.loss, stats.accuracy
            );
        }
        eprintln!("[{name}] trained in {:.1?}", started.elapsed());
        network.export_weights().save(&cache).expect("cache weights");
    }

    let software_error = 1.0 - network.evaluate(&test.images, &test.labels);
    let quantized = QuantizedNetwork::from_network(&network);
    Workload {
        name,
        network,
        quantized,
        test,
        software_error,
    }
}

/// The scheme grid of Figures 10 and 11, in legend order.
pub fn figure_schemes() -> Vec<ProtectionScheme> {
    vec![
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::Static128,
        ProtectionScheme::data_aware(7),
        ProtectionScheme::data_aware(8),
        ProtectionScheme::data_aware(9),
        ProtectionScheme::data_aware(10),
    ]
}

/// One evaluated configuration's result row.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Workload name.
    pub network: String,
    /// Bits per cell.
    pub cell_bits: u32,
    /// Scheme legend label.
    pub scheme: String,
    /// Top-1 misclassification rate.
    pub misclassification: f64,
    /// Top-5 misclassification rate.
    pub top5: f64,
    /// Fraction of predictions flipped relative to exact fixed point.
    pub flip_rate: f64,
    /// Samples evaluated.
    pub samples: usize,
    /// ECU decode error rate (fraction of non-clean group-cycles).
    pub decode_error_rate: f64,
}

/// Evaluates one scheme × cell-bits configuration of a workload.
///
/// # Panics
///
/// Panics on evaluation errors (bad config, repeated worker panic) —
/// the regenerator binaries treat those as fatal.
pub fn evaluate_config(workload: &Workload, config: &AccelConfig, seed: u64) -> ResultRow {
    let started = Instant::now();
    let result = accel::sim::evaluate(
        &workload.quantized,
        &workload.test.images,
        &workload.test.labels,
        config,
        seed,
        threads(),
    )
    .expect("evaluation failed");
    eprintln!(
        "[{}] {} {}b: misclass {:.3} flips {:.3} ({} samples, {:.1?})",
        workload.name,
        config.scheme.label(),
        config.device.bits_per_cell,
        result.misclassification,
        result.flip_rate,
        result.samples,
        started.elapsed()
    );
    ResultRow {
        network: workload.name.to_string(),
        cell_bits: config.device.bits_per_cell,
        scheme: config.scheme.label(),
        misclassification: result.misclassification,
        top5: result.top5_misclassification,
        flip_rate: result.flip_rate,
        samples: result.samples,
        decode_error_rate: result.stats.error_rate(),
    }
}

/// Renders rows as a fixed-width text table grouped like the paper's
/// figures.
pub fn print_table(title: &str, rows: &[ResultRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<8} {:>5}  {:<10} {:>14} {:>10} {:>10}",
        "network", "bits", "scheme", "misclass", "top5", "flips"
    );
    for r in rows {
        println!(
            "{:<8} {:>5}  {:<10} {:>13.2}% {:>9.2}% {:>9.2}%",
            r.network,
            r.cell_bits,
            r.scheme,
            r.misclassification * 100.0,
            r.top5 * 100.0,
            r.flip_rate * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert!(samples() >= 1);
        assert!(threads() >= 1);
        assert!(train_size() >= 1);
    }

    #[test]
    fn scheme_grid_matches_figures() {
        let schemes = figure_schemes();
        assert_eq!(schemes.len(), 7);
        assert_eq!(schemes[0].label(), "NoECC");
        assert_eq!(schemes[6].label(), "ABN-10");
    }
}
