//! Regenerates Figure 7: the current transient of a 128-element row
//! with two bits per cell and equal state occupancy, plus the §IV error
//! rates (paper: 14.5 % total — 13.9 % high, 0.51 % low).
//!
//! Usage: `cargo run --release -p bench --bin fig7_transient`

use analog::TransientRow;
use rand_chacha::rand_core::SeedableRng;
use serde::Serialize;
use xbar::DeviceParams;

#[derive(Serialize)]
struct Fig7 {
    duration_s: f64,
    samples: usize,
    ideal_current_a: f64,
    lsb_a: f64,
    high_rate: f64,
    low_rate: f64,
    total_rate: f64,
    two_step_rate: f64,
    trace_times: Vec<f64>,
    trace_currents: Vec<f64>,
}

fn main() {
    // Equal occupancy of the four 2-bit states across 128 cells (§IV).
    let levels: Vec<u32> = (0..128).map(|i| i % 4).collect();
    let params = DeviceParams {
        fault_rate: 0.0,
        ..DeviceParams::default()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut row = TransientRow::new(&levels, &params, &mut rng);

    // The paper runs 1 s of transient; sampling every RTN dwell time
    // captures the same statistics in bounded compute. Scale with
    // REPRO_SAMPLES if a longer run is wanted.
    let samples: usize = std::env::var("REPRO_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|s: usize| s * 2000)
        .unwrap_or(100_000);
    let duration = samples as f64 * params.rtn_tau_on / 10.0;
    let trace = row.run(duration, samples, &mut rng);
    let stats = trace.error_stats();

    println!("=== Figure 7: row current transient ===");
    println!("row: 128 cells, 2 bits/cell, equal state occupancy");
    println!("duration: {duration:.4} s, {samples} samples");
    println!("ideal current: {:.4} mA", trace.ideal() * 1e3);
    println!(
        "thresholds ±1: {:.4} / {:.4} mA",
        trace.threshold(-1) * 1e3,
        trace.threshold(1) * 1e3
    );
    println!(
        "error rates: high {:.2}%  low {:.2}%  total {:.2}%  (paper: 13.9% / 0.51% / 14.5%)",
        stats.high_rate * 100.0,
        stats.low_rate * 100.0,
        stats.total_rate() * 100.0
    );
    println!("two-step rate: {:.3}%", stats.two_step_rate * 100.0);

    // ASCII sketch of the first stretch of the trace.
    let sketch = trace.downsample(64);
    let lo = trace.threshold(-2);
    let hi = trace.threshold(2);
    println!("\ntrace (first {} samples, ±2 LSB window):", sketch.times().len());
    for (&t, &i) in sketch.times().iter().zip(sketch.currents()).take(32) {
        let frac = ((i - lo) / (hi - lo)).clamp(0.0, 1.0);
        let pos = (frac * 60.0) as usize;
        let mut line = vec![b' '; 61];
        line[30] = b'|';
        line[pos] = b'*';
        println!("{:>9.6}s {}", t, String::from_utf8_lossy(&line));
    }

    let down = trace.downsample(512);
    bench::write_json(
        "fig7_transient",
        &Fig7 {
            duration_s: duration,
            samples,
            ideal_current_a: trace.ideal(),
            lsb_a: trace.lsb(),
            high_rate: stats.high_rate,
            low_rate: stats.low_rate,
            total_rate: stats.total_rate(),
            two_step_rate: stats.two_step_rate,
            trace_times: down.times().to_vec(),
            trace_currents: down.currents().to_vec(),
        },
    );
}
