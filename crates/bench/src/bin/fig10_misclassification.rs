//! Regenerates Figure 10: misclassification rate of MLP1, MLP2 and CNN1
//! for 1–5 bits per cell under Software / NoECC / Static16 / Static128 /
//! ABN-7..10, without stuck-at faults.
//!
//! Usage: `cargo run --release -p bench --bin fig10_misclassification`
//! (set `REPRO_SAMPLES=1000` to match the paper's test-set size; the
//! default is sized for a single-CPU smoke run).

use accel::AccelConfig;
use bench::{evaluate_config, figure_schemes, print_table, workload, write_json, ResultRow};

fn main() {
    let networks = ["mlp1", "mlp2", "cnn1"];
    let mut rows: Vec<ResultRow> = Vec::new();

    for name in networks {
        let wl = workload(name);
        println!(
            "[{}] software misclassification: {:.2}%",
            name,
            wl.software_error * 100.0
        );
        rows.push(ResultRow {
            network: name.into(),
            cell_bits: 0,
            scheme: "Software".into(),
            misclassification: wl.software_error,
            top5: 0.0,
            flip_rate: 0.0,
            samples: wl.test.len(),
            decode_error_rate: 0.0,
        });
        for bits in 1..=5u32 {
            for scheme in figure_schemes() {
                let config = AccelConfig::new(scheme)
                    .with_cell_bits(bits)
                    .with_fault_rate(0.0);
                rows.push(evaluate_config(&wl, &config, 1000 + bits as u64));
            }
        }
    }

    print_table("Figure 10: misclassification (no cell faults)", &rows);
    write_json("fig10_misclassification", &rows);
}
