//! Regenerates Figure 11: the Figure 10 grid with 0.1 % stuck-at cell
//! faults (Table I's failure rate), exercising the split correction
//! tables.
//!
//! Usage: `cargo run --release -p bench --bin fig11_cell_faults`

use accel::AccelConfig;
use bench::{evaluate_config, figure_schemes, print_table, workload, write_json, ResultRow};

fn main() {
    let networks = ["mlp1", "mlp2", "cnn1"];
    let mut rows: Vec<ResultRow> = Vec::new();

    for name in networks {
        let wl = workload(name);
        rows.push(ResultRow {
            network: name.into(),
            cell_bits: 0,
            scheme: "Software".into(),
            misclassification: wl.software_error,
            top5: 0.0,
            flip_rate: 0.0,
            samples: wl.test.len(),
            decode_error_rate: 0.0,
        });
        for bits in 1..=5u32 {
            for scheme in figure_schemes() {
                let config = AccelConfig::new(scheme)
                    .with_cell_bits(bits)
                    .with_fault_rate(1e-3);
                rows.push(evaluate_config(&wl, &config, 2000 + bits as u64));
            }
        }
    }

    print_table("Figure 11: misclassification (0.1% stuck-at faults)", &rows);
    write_json("fig11_cell_faults", &rows);
}
