//! Extension: hierarchy resource and energy accounting per network and
//! scheme — the storage-overhead numbers behind §VIII-A's "35 bit
//! slices at 4 bits per cell vs 64 unprotected 2-bit slices" argument.
//!
//! Usage: `cargo run --release -p bench --bin table_resources`

use accel::hierarchy::{plan_network, HierarchyConfig};
use accel::{AccelConfig, ProtectionScheme};
use bench::workload;
use serde::Serialize;

#[derive(Serialize)]
struct ResourceRow {
    network: String,
    scheme: String,
    cell_bits: u32,
    total_rows: usize,
    storage_overhead_pct: f64,
    arrays: usize,
    imas: usize,
    tiles: usize,
    energy_nj: f64,
}

fn main() {
    let hierarchy = HierarchyConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<10} {:>4} {:>10} {:>9} {:>7} {:>6} {:>6} {:>10}",
        "network", "scheme", "bits", "phys rows", "ovh%", "arrays", "IMAs", "tiles", "energy nJ"
    );
    for name in ["mlp1", "mlp2", "cnn1"] {
        let wl = workload(name);
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::data_aware(9),
        ] {
            for bits in [2u32, 4] {
                let config = AccelConfig::new(scheme.clone()).with_cell_bits(bits);
                let plan = plan_network(&wl.quantized, &config, &hierarchy);
                println!(
                    "{:<8} {:<10} {:>4} {:>10} {:>8.2}% {:>7} {:>6} {:>6} {:>10.1}",
                    name,
                    scheme.label(),
                    bits,
                    plan.data_rows + plan.check_rows,
                    plan.storage_overhead * 100.0,
                    plan.arrays,
                    plan.imas,
                    plan.tiles,
                    plan.energy_nj
                );
                rows.push(ResourceRow {
                    network: name.into(),
                    scheme: scheme.label(),
                    cell_bits: bits,
                    total_rows: plan.data_rows + plan.check_rows,
                    storage_overhead_pct: plan.storage_overhead * 100.0,
                    arrays: plan.arrays,
                    imas: plan.imas,
                    tiles: plan.tiles,
                    energy_nj: plan.energy_nj,
                });
            }
        }
    }
    bench::write_json("table_resources", &rows);
}
