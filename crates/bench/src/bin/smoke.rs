//! Calibration diagnostic (not a paper figure): software error and
//! flip rates vs the exact fixed-point engine under NoECC and ABN-9 at
//! 2- and 4-bit cells. Useful when retuning the dataset or device
//! parameters.
use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use bench::workload;

fn main() {
    let wl = workload("mlp1");
    println!("software err {:.2}% over {} samples", wl.software_error*100.0, wl.test.len());
    let n = wl.test.len();
    let per = wl.test.images.len() / n;
    let mut exact = wl.quantized.build_engines(&neural::ExactProvider);
    let clean_preds: Vec<usize> = (0..n).map(|i| {
        wl.quantized.predict(&wl.test.images.data()[i*per..(i+1)*per], &mut exact)
    }).collect();

    for bits in [2u32, 4] {
        for scheme in [ProtectionScheme::None, ProtectionScheme::data_aware(9)] {
            let config = AccelConfig::new(scheme.clone()).with_cell_bits(bits).with_fault_rate(0.0);
            let provider = CrossbarProvider::new(config, 9);
            let mut engines = wl.quantized.build_engines(&provider);
            let mut flips = 0; let mut errs = 0;
            for i in 0..n {
                let img = &wl.test.images.data()[i*per..(i+1)*per];
                let p = wl.quantized.predict(img, &mut engines);
                if p != clean_preds[i] { flips += 1; }
                if p != wl.test.labels[i] { errs += 1; }
            }
            let st = provider.stats();
            println!("{}b {}: misclass {:.2}% flips {}/{} ecu_err {:.1}% (corr {} unc {} misc {})",
                bits, scheme.label(), 100.0*errs as f64/n as f64, flips, n,
                st.error_rate()*100.0, st.corrected, st.uncorrectable, st.miscorrected);
        }
    }
}
