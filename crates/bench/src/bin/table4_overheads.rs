//! Regenerates Table IV and the §VIII-B overhead percentages: ECU and
//! correction-table area/power, tile- and chip-level overheads for the
//! 7–10 check-bit configurations.
//!
//! Usage: `cargo run --release -p bench --bin table4_overheads`

use accel::cost;
use serde::Serialize;

#[derive(Serialize)]
struct OverheadRow {
    check_bits: u32,
    ecu_area_mm2: f64,
    ecu_power_mw: f64,
    table_area_mm2: f64,
    table_power_mw: f64,
    ecu_tile_area_pct: f64,
    tile_area_pct: f64,
    chip_area_pct: f64,
    ecu_tile_power_pct: f64,
    chip_power_pct: f64,
}

fn main() {
    println!("=== Table IV: 9-bit error correction hardware ===");
    let ecu = cost::ecu_cost(9);
    let table = cost::table_cost(9);
    println!(
        "Error Correction Unit (ECU): {:.4} mm²  {:.2} mW   (paper: 0.0031 mm², 1.42 mW)",
        ecu.area_mm2, ecu.power_mw
    );
    println!(
        "Error Correction Table:      {:.4} mm²  {:.2} mW   (paper: 0.0012 mm², 0.51 mW)",
        table.area_mm2, table.power_mw
    );

    println!("\n=== §VIII-B: overhead percentages by check-bit budget ===");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "bits", "ECU/tile", "tile", "chip", "ECU power", "chip power"
    );
    let mut rows = Vec::new();
    for bits in 7..=10 {
        let r = cost::overheads(bits);
        println!(
            "{:>5} {:>8.2}% {:>8.2}% {:>8.2}% {:>9.2}% {:>9.2}%",
            bits,
            r.ecu_tile_area_fraction * 100.0,
            r.tile_area_fraction * 100.0,
            r.chip_area_fraction * 100.0,
            r.ecu_tile_power_fraction * 100.0,
            r.chip_power_fraction * 100.0
        );
        rows.push(OverheadRow {
            check_bits: bits,
            ecu_area_mm2: cost::ecu_cost(bits).area_mm2,
            ecu_power_mw: cost::ecu_cost(bits).power_mw,
            table_area_mm2: cost::table_cost(bits).area_mm2,
            table_power_mw: cost::table_cost(bits).power_mw,
            ecu_tile_area_pct: r.ecu_tile_area_fraction * 100.0,
            tile_area_pct: r.tile_area_fraction * 100.0,
            chip_area_pct: r.chip_area_fraction * 100.0,
            ecu_tile_power_pct: r.ecu_tile_power_fraction * 100.0,
            chip_power_pct: r.chip_power_fraction * 100.0,
        });
    }
    println!("\npaper @9 bits: ECU/tile 3.4%, tile 6.3%, chip 5.3%, ECU power 2.1%, chip power 5.8%");
    println!("headline claim: <4.5% area and <4.7% energy at the 7-bit point");
    bench::write_json("table4_overheads", &rows);
}
