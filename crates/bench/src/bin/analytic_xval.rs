//! Cross-validates the analytic error model against the Monte-Carlo
//! harness on the Figure 10/11 grid and measures its speedup.
//!
//! For every grid cell — workload × cell-bits × scheme × fault regime
//! (Fig 10: no faults; Fig 11: 0.1 % stuck-at) — the cell is evaluated
//! twice: once by `accel::sim::evaluate` with the same seeds the figure
//! regenerators use, once by `accel::analytic::predict`. Per-cell
//! agreement (absolute misclassification / flip-rate difference) and
//! wall-clock times land in `results/analytic_xval.json`; the summary —
//! worst-case agreement, per-cell speedup distribution — is recorded in
//! `BENCH_analytic.json` at the repo root, which EXPERIMENTS.md quotes.
//!
//! Usage: `cargo run --release -p bench --bin analytic_xval [-- --smoke]`
//! Knobs: `REPRO_SAMPLES`, `REPRO_TRAIN`, `REPRO_THREADS`.
//!
//! `--smoke` restricts the grid to MLP1 × 2-bit × {NoECC, Static16,
//! ABN-9} × both fault regimes.
//!
//! `--gate` runs the single pinned cell `scripts/check.sh` gates on —
//! MLP1 × 2-bit × ABN-9 × 0.1 % stuck-at — writes nothing, and exits
//! non-zero unless both agreement deltas stay within `GATE_TOLERANCE`.

use std::time::Instant;

use accel::AccelConfig;
use bench::{figure_schemes, threads, workload, write_json, Workload};
use serde::Serialize;

/// One grid cell's cross-validation record.
///
/// Besides the wall-clock times at the configured sample count, each
/// path is also timed on a single sample so the per-cell cost splits
/// into a one-time model/programming cost and a marginal per-sample
/// cost.  `projected_paper_cell_speedup` extrapolates both cost models
/// to the paper's 1000-sample protocol — the figure EXPERIMENTS.md
/// quotes as the per-grid-cell speedup at full fidelity.
#[derive(Serialize)]
struct XvalRow {
    network: String,
    cell_bits: u32,
    scheme: String,
    fault_rate: f64,
    samples: usize,
    mc_misclassification: f64,
    analytic_misclassification: f64,
    mc_flip_rate: f64,
    analytic_flip_rate: f64,
    abs_diff_misclassification: f64,
    abs_diff_flip_rate: f64,
    mc_ms: f64,
    analytic_ms: f64,
    speedup: f64,
    mc_marginal_ms_per_sample: f64,
    analytic_marginal_ms_per_sample: f64,
    marginal_speedup: f64,
    projected_paper_cell_speedup: f64,
}

#[derive(Serialize)]
struct Summary {
    cells: usize,
    samples_per_cell: usize,
    max_abs_diff_misclassification: f64,
    mean_abs_diff_misclassification: f64,
    max_abs_diff_flip_rate: f64,
    mean_mc_ms: f64,
    mean_analytic_ms: f64,
    min_speedup: f64,
    median_speedup: f64,
    max_speedup: f64,
    min_marginal_speedup: f64,
    median_marginal_speedup: f64,
    min_projected_paper_cell_speedup: f64,
    median_projected_paper_cell_speedup: f64,
}

/// Extrapolated per-cell cost at `samples` given a one-sample and an
/// n-sample wall time: one-time cost + marginal per-sample cost.
fn projected_ms(t1_ms: f64, tn_ms: f64, n: usize, samples: f64) -> (f64, f64) {
    let marginal = if n > 1 {
        ((tn_ms - t1_ms) / (n as f64 - 1.0)).max(0.0)
    } else {
        tn_ms / n.max(1) as f64
    };
    let one_time = (t1_ms - marginal).max(0.0);
    (marginal, one_time + marginal * samples)
}

fn cell(wl: &Workload, config: &AccelConfig, seed: u64) -> XvalRow {
    let mc_start = Instant::now();
    let mc = accel::sim::evaluate(
        &wl.quantized,
        &wl.test.images,
        &wl.test.labels,
        config,
        seed,
        threads(),
    )
    .expect("mc evaluation failed");
    let mc_ms = mc_start.elapsed().as_secs_f64() * 1e3;

    let an_start = Instant::now();
    let an = accel::analytic::predict_threaded(
        &wl.quantized,
        &wl.test.images,
        &wl.test.labels,
        config,
        threads(),
    )
    .expect("analytic prediction failed");
    let analytic_ms = an_start.elapsed().as_secs_f64() * 1e3;

    // Single-sample timings isolate the one-time cost (engine
    // programming on the MC side, model construction on the analytic
    // side) from the marginal per-sample cost.
    let dim: usize = wl.test.images.shape()[1..].iter().product();
    let one_image =
        neural::Tensor::from_vec(vec![1, dim], wl.test.images.data()[..dim].to_vec());
    let one_label = &wl.test.labels[..1];
    let mc1_start = Instant::now();
    accel::sim::evaluate(&wl.quantized, &one_image, one_label, config, seed, threads())
        .expect("mc single-sample evaluation failed");
    let mc1_ms = mc1_start.elapsed().as_secs_f64() * 1e3;
    let an1_start = Instant::now();
    accel::analytic::predict_threaded(&wl.quantized, &one_image, one_label, config, threads())
        .expect("analytic single-sample prediction failed");
    let an1_ms = an1_start.elapsed().as_secs_f64() * 1e3;

    const PAPER_SAMPLES: f64 = 1000.0;
    let (mc_marginal, mc_paper_ms) = projected_ms(mc1_ms, mc_ms, mc.samples, PAPER_SAMPLES);
    let (an_marginal, an_paper_ms) =
        projected_ms(an1_ms, analytic_ms, mc.samples, PAPER_SAMPLES);

    let row = XvalRow {
        network: wl.name.to_string(),
        cell_bits: config.device.bits_per_cell,
        scheme: config.scheme.label(),
        fault_rate: config.device.fault_rate,
        samples: mc.samples,
        mc_misclassification: mc.misclassification,
        analytic_misclassification: an.misclassification,
        mc_flip_rate: mc.flip_rate,
        analytic_flip_rate: an.flip_rate,
        abs_diff_misclassification: (mc.misclassification - an.misclassification).abs(),
        abs_diff_flip_rate: (mc.flip_rate - an.flip_rate).abs(),
        mc_ms,
        analytic_ms,
        speedup: mc_ms / analytic_ms.max(1e-9),
        mc_marginal_ms_per_sample: mc_marginal,
        analytic_marginal_ms_per_sample: an_marginal,
        marginal_speedup: mc_marginal / an_marginal.max(1e-9),
        projected_paper_cell_speedup: mc_paper_ms / an_paper_ms.max(1e-9),
    };
    eprintln!(
        "[{}] {} {}b fault {:.0e}: mc {:.3} an {:.3} (Δ {:.3}) flips mc {:.3} an {:.3} — {:.0} ms vs {:.1} ms ({:.0}x wall, {:.0}x marginal, {:.0}x @1000)",
        row.network,
        row.scheme,
        row.cell_bits,
        row.fault_rate,
        row.mc_misclassification,
        row.analytic_misclassification,
        row.abs_diff_misclassification,
        row.mc_flip_rate,
        row.analytic_flip_rate,
        row.mc_ms,
        row.analytic_ms,
        row.speedup,
        row.marginal_speedup,
        row.projected_paper_cell_speedup,
    );
    row
}

/// Agreement bound for the `--gate` cell, matching the tier-1 pin in
/// `crates/accel/tests/analytic.rs` (one 24-sample MC flip ≈ 0.042).
const GATE_TOLERANCE: f64 = 0.05;

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        let wl = workload("mlp1");
        let scheme = figure_schemes()
            .into_iter()
            .find(|s| s.label() == "ABN-9")
            .expect("ABN-9 in figure schemes");
        let config = AccelConfig::new(scheme)
            .with_cell_bits(2)
            .with_fault_rate(1e-3);
        let row = cell(&wl, &config, 2002);
        if row.abs_diff_misclassification > GATE_TOLERANCE
            || row.abs_diff_flip_rate > GATE_TOLERANCE
        {
            eprintln!(
                "FAIL: analytic-vs-MC gate cell disagrees beyond {GATE_TOLERANCE}: \
                 |Δmis| {:.4}, |Δflip| {:.4}",
                row.abs_diff_misclassification, row.abs_diff_flip_rate,
            );
            std::process::exit(1);
        }
        println!(
            "analytic gate cell agrees: |Δmis| {:.4}, |Δflip| {:.4} (tolerance {GATE_TOLERANCE})",
            row.abs_diff_misclassification, row.abs_diff_flip_rate,
        );
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let networks: &[&str] = if smoke {
        &["mlp1"]
    } else {
        &["mlp1", "mlp2", "cnn1"]
    };
    let bits_grid: Vec<u32> = if smoke { vec![2] } else { (1..=5).collect() };

    let mut rows: Vec<XvalRow> = Vec::new();
    for name in networks {
        let wl = workload(name);
        for &bits in &bits_grid {
            for scheme in figure_schemes() {
                if smoke && !matches!(scheme.label().as_str(), "NoECC" | "Static16" | "ABN-9") {
                    continue;
                }
                // Same seeds as the figure regenerators, so the MC side
                // of a cell is bit-identical to the recorded figures.
                let fig10 = AccelConfig::new(scheme.clone())
                    .with_cell_bits(bits)
                    .with_fault_rate(0.0);
                rows.push(cell(&wl, &fig10, 1000 + bits as u64));
                let fig11 = AccelConfig::new(scheme)
                    .with_cell_bits(bits)
                    .with_fault_rate(1e-3);
                rows.push(cell(&wl, &fig11, 2000 + bits as u64));
            }
        }
    }

    let n = rows.len() as f64;
    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    let mut marginal: Vec<f64> = rows.iter().map(|r| r.marginal_speedup).collect();
    marginal.sort_by(|a, b| a.total_cmp(b));
    let mut projected: Vec<f64> = rows.iter().map(|r| r.projected_paper_cell_speedup).collect();
    projected.sort_by(|a, b| a.total_cmp(b));
    let summary = Summary {
        cells: rows.len(),
        samples_per_cell: rows.first().map(|r| r.samples).unwrap_or(0),
        max_abs_diff_misclassification: rows
            .iter()
            .map(|r| r.abs_diff_misclassification)
            .fold(0.0, f64::max),
        mean_abs_diff_misclassification: rows
            .iter()
            .map(|r| r.abs_diff_misclassification)
            .sum::<f64>()
            / n,
        max_abs_diff_flip_rate: rows.iter().map(|r| r.abs_diff_flip_rate).fold(0.0, f64::max),
        mean_mc_ms: rows.iter().map(|r| r.mc_ms).sum::<f64>() / n,
        mean_analytic_ms: rows.iter().map(|r| r.analytic_ms).sum::<f64>() / n,
        min_speedup: *speedups.first().unwrap_or(&0.0),
        median_speedup: speedups.get(speedups.len() / 2).copied().unwrap_or(0.0),
        max_speedup: *speedups.last().unwrap_or(&0.0),
        min_marginal_speedup: *marginal.first().unwrap_or(&0.0),
        median_marginal_speedup: marginal.get(marginal.len() / 2).copied().unwrap_or(0.0),
        min_projected_paper_cell_speedup: *projected.first().unwrap_or(&0.0),
        median_projected_paper_cell_speedup: projected
            .get(projected.len() / 2)
            .copied()
            .unwrap_or(0.0),
    };

    println!(
        "analytic vs MC over {} cells: worst |Δmisclass| {:.4}, worst |Δflip| {:.4}, \
         median speedup {:.0}x wall / {:.0}x marginal / {:.0}x projected @1000 samples \
         (min {:.0}x wall)",
        summary.cells,
        summary.max_abs_diff_misclassification,
        summary.max_abs_diff_flip_rate,
        summary.median_speedup,
        summary.median_marginal_speedup,
        summary.median_projected_paper_cell_speedup,
        summary.min_speedup,
    );

    write_json("analytic_xval", &rows);
    let bench = serde_json::to_string_pretty(&summary).expect("serialize summary");
    std::fs::write("BENCH_analytic.json", bench + "\n").expect("write BENCH_analytic.json");
    eprintln!("wrote results/analytic_xval.json and BENCH_analytic.json");
}
