//! Ablation: multi-operand group size (§V-B2).
//!
//! Sweeps the coded group from 1 to 8 16-bit operands and reports both
//! the storage overhead (check bits per 128 data bits) and MLP1
//! accuracy, quantifying the amortization argument for wide groups.
//!
//! Usage: `cargo run --release -p bench --bin ablation_group_size`

use accel::AccelConfig;
use ancode::GroupLayout;
use bench::{evaluate_config, workload, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct GroupRow {
    operands: usize,
    check_bits_per_128: f64,
    misclassification: f64,
}

fn main() {
    let wl = workload("mlp1");
    let mut rows = Vec::new();
    println!("=== Ablation: operand group size (ABN-9, 2-bit cells) ===");
    for operands in [1usize, 2, 4, 8] {
        let mut config = AccelConfig::new(accel::ProtectionScheme::DataAware {
            check_bits: 9,
            hardware_candidates: true,
        })
        .with_cell_bits(2)
        .with_fault_rate(0.0);
        config.group = GroupLayout::new(16, operands).expect("valid layout");
        let row = evaluate_config(&wl, &config, 500 + operands as u64);
        let per_128 = 9.0 * (128.0 / (16.0 * operands as f64));
        println!(
            "{operands} × 16-bit operands: {per_128:>5.1} check bits / 128 data bits, misclass {:.2}%",
            row.misclassification * 100.0
        );
        rows.push(GroupRow {
            operands,
            check_bits_per_128: per_128,
            misclassification: row.misclassification,
        });
    }
    write_json("ablation_group_size", &rows);
}
