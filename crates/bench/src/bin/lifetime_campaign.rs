//! Lifetime fault-injection campaign: graceful degradation over wear.
//!
//! Steps simulated device lifetime forward epoch by epoch — each epoch
//! adds full-array rewrites, the log-uniform endurance model converts
//! accumulated writes to a stuck-cell fraction, and the accelerator is
//! re-programmed (A-search re-run against the fresh fault map) and
//! re-evaluated at that fault rate. Runs the NoECC baseline against
//! the data-aware ABN-9 code on the same wear schedule, reproducing
//! the "handle faults gracefully over the lifetime of the system"
//! claim (§II-C6, §V-B) as a degradation curve rather than a point
//! estimate.
//!
//! The sweep is declared as a [`GridSpec`] — the same spec type the
//! `campaign-grid` runner expands — so the axes (scheme × cell-bits ×
//! wear schedule × seed) live in one validated structure and each
//! cell's [`accel::campaign::CampaignConfig`] is derived by
//! `spec.cell_config`, not
//! assembled by hand. The spec is written to
//! `results/campaign_grid_spec.json` so a `campaign-grid` run can
//! reproduce the exact sweep.
//!
//! Campaign state checkpoints to `results/campaign_<scheme>.json`;
//! re-running with `--resume` continues an interrupted sweep. Per-epoch
//! wall-clock and checkpoint-write times are recorded separately in
//! `results/campaign_timing.json` (timing lives outside the campaign
//! state, which must serialize deterministically for resume).
//!
//! Usage: `cargo run --release -p bench --bin lifetime_campaign
//!         [-- --smoke] [-- --resume]`
//! Knobs: `REPRO_SAMPLES`, `REPRO_THREADS`, `REPRO_TRAIN`,
//! `REPRO_EPOCHS` (default 10).

use std::time::Instant;

use accel::campaign::Campaign;
use accel::grid::{GridSpec, GRID_SPEC_VERSION};
use bench::{results_dir, samples, threads, train_size, workload, write_json};
use serde::Serialize;

/// Wall-clock accounting for one campaign epoch.
#[derive(Serialize)]
struct EpochTiming {
    scheme: String,
    epoch: u64,
    epoch_ms: f64,
    checkpoint_ms: f64,
    checkpoint_fraction: f64,
}

#[derive(Serialize)]
struct TimingReport {
    epochs: Vec<EpochTiming>,
    mean_epoch_ms: f64,
    mean_checkpoint_fraction: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let resume = args.iter().any(|a| a == "--resume");
    let epochs: u64 = if smoke {
        2
    } else {
        std::env::var("REPRO_EPOCHS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
    };

    // The sweep, declared once. 5-bit cells: the aggressive-density
    // regime where this model's scheme separation concentrates
    // (Figure 10 notes, DESIGN §6.7) and the data-aware codes earn
    // their keep (§VIII-A). Wear schedule: 4e3 rewrites/epoch on top
    // of the 1e6 endurance floor ramps the stuck-cell fraction
    // 0 → ~0.26 % over ten epochs, bracketing the 0.1 % point
    // Figure 11 evaluates statically. Beyond ~0.5 % the syndrome
    // tables run out of coverage and *both* schemes break down —
    // lifetime past that point is not the graceful-degradation regime
    // the paper claims.
    let spec = GridSpec {
        version: GRID_SPEC_VERSION,
        models: vec!["mlp1".to_string()],
        schemes: vec!["NoECC".to_string(), "ABN-9".to_string()],
        cell_bits: vec![5],
        writes_per_epoch: vec![4e3],
        seeds: vec![0xCA_FE],
        epochs,
        samples: samples() as u64,
        train: train_size() as u64,
        threads: threads() as u64,
        checkpoint_every: 0, // checkpoints timed manually below
        initial_writes: 1e6,
        error_model: "mc".to_string(),
    };
    spec.validate().expect("grid spec");
    write_json("campaign_grid_spec", &spec);

    // Per-epoch telemetry (campaign_epoch / shard_done / shard_retry
    // events, DESIGN.md §8) lands next to the checkpoints. A no-op
    // unless the bench crate is built with `--features obs`; the
    // recorded BENCH_campaign.json baseline stays uninstrumented.
    let events_path = results_dir().join("campaign_events.jsonl");
    if obs::enabled() {
        obs::events::log_to_file(&events_path).expect("open event log");
    }

    let wl = workload("mlp1");
    let mut timings: Vec<EpochTiming> = Vec::new();
    let mut finals: Vec<(String, f64, f64)> = Vec::new();

    for cell in spec.cells() {
        let label = cell.scheme.clone();
        let config = spec.cell_config(&cell).expect("cell config");

        let path = results_dir().join(format!("campaign_{label}.json"));
        let mut campaign = if resume && path.exists() {
            Campaign::resume(config, &path).expect("resume campaign")
        } else {
            Campaign::new(config).expect("campaign config")
        };
        campaign = campaign.with_checkpoint(path.clone());
        if campaign.completed_epochs() > 0 {
            eprintln!(
                "[{label}] resuming after epoch {}",
                campaign.completed_epochs() - 1
            );
        }

        while !campaign.is_complete() {
            let epoch = campaign.completed_epochs();
            let started = Instant::now();
            let outcome =
                campaign.run_epochs(&wl.quantized, &wl.test.images, &wl.test.labels, epoch + 1);
            let epoch_ms = started.elapsed().as_secs_f64() * 1e3;
            if let Err(e) = outcome {
                // Partial results survive: the checkpoint holds every
                // completed epoch.
                campaign.save_checkpoint().expect("save partial results");
                eprintln!("[{label}] campaign failed at epoch {epoch}: {e}");
                eprintln!("[{label}] partial results in {}", path.display());
                std::process::exit(1);
            }
            let ck_started = Instant::now();
            campaign.save_checkpoint().expect("write checkpoint");
            let checkpoint_ms = ck_started.elapsed().as_secs_f64() * 1e3;

            let r = campaign.state().completed.last().expect("epoch record");
            eprintln!(
                "[{label}] epoch {epoch}: faults {:.3}% misclass {:.1}% flips {:.1}% \
                 ({:.0} ms, checkpoint {:.2} ms)",
                r.fault_rate * 100.0,
                r.misclassification * 100.0,
                r.flip_rate * 100.0,
                epoch_ms,
                checkpoint_ms
            );
            timings.push(EpochTiming {
                scheme: label.clone(),
                epoch,
                epoch_ms,
                checkpoint_ms,
                checkpoint_fraction: checkpoint_ms / epoch_ms.max(1e-9),
            });
        }
        campaign.finalize().expect("final checkpoint");

        let last = campaign.state().completed.last().expect("completed epoch");
        let first = campaign.state().completed.first().expect("first epoch");
        finals.push((
            label.clone(),
            last.misclassification - first.misclassification,
            last.flip_rate,
        ));
        println!(
            "[{label}] degradation over {epochs} epochs: misclass {:+.1}% (flips end at {:.1}%)",
            (last.misclassification - first.misclassification) * 100.0,
            last.flip_rate * 100.0
        );
    }

    if timings.is_empty() {
        // Resumed campaigns that were already complete run no epochs;
        // leave the recorded timing report alone rather than
        // overwriting it with an empty one.
        println!("all campaigns already complete; timing report unchanged");
    } else {
        let mean_epoch_ms =
            timings.iter().map(|t| t.epoch_ms).sum::<f64>() / timings.len() as f64;
        let mean_checkpoint_fraction =
            timings.iter().map(|t| t.checkpoint_fraction).sum::<f64>() / timings.len() as f64;
        write_json(
            "campaign_timing",
            &TimingReport {
                epochs: timings,
                mean_epoch_ms,
                mean_checkpoint_fraction,
            },
        );
        println!(
            "mean epoch {:.0} ms, checkpoint overhead {:.3}% of epoch time",
            mean_epoch_ms,
            mean_checkpoint_fraction * 100.0
        );
    }

    if obs::enabled() {
        obs::events::stop_logging();
        println!("event log: {}", events_path.display());
    }

    if let [(_, no_ecc_delta, no_ecc_flips), (_, abn_delta, abn_flips)] = finals.as_slice() {
        println!(
            "graceful degradation: ABN-9 misclass drift {:+.1}% vs NoECC {:+.1}% \
             (end-of-life flips {:.1}% vs {:.1}%)",
            abn_delta * 100.0,
            no_ecc_delta * 100.0,
            abn_flips * 100.0,
            no_ecc_flips * 100.0
        );
    }
}
