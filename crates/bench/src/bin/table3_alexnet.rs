//! Regenerates Table III: AlexNet(-proxy) top-1 and top-5
//! misclassification for Software, Uncorrected (NoECC) and ABN-9 at the
//! paper's single design point (2-bit cells, 9 ECC bits).
//!
//! Paper: software 42.96 / 19.74 %, uncorrected 48.3 / 21.3 %,
//! ABN-9 43.9 / 20.1 %.
//!
//! Usage: `cargo run --release -p bench --bin table3_alexnet`

use accel::{AccelConfig, ProtectionScheme};
use bench::{evaluate_config, workload, write_json};
use neural::Tensor;
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    config: String,
    top1: f64,
    top5: f64,
}

fn main() {
    let wl = workload("alexnet");

    // Software top-1/top-5 on the float network.
    let mut net = wl.network;
    let n = wl.test.len();
    let per = wl.test.images.len() / n;
    let mut top1_err = 0usize;
    let mut top5_err = 0usize;
    for i in 0..n {
        let image = Tensor::from_vec(
            vec![1, 3, 16, 16],
            wl.test.images.data()[i * per..(i + 1) * per].to_vec(),
        );
        let logits = net.forward(&image);
        let k = 5.min(logits.shape()[1]);
        let row = Tensor::from_vec(
            vec![logits.shape()[1]],
            logits.data().to_vec(),
        );
        let top = row.top_k(k);
        if top[0] != wl.test.labels[i] {
            top1_err += 1;
        }
        if !top.contains(&wl.test.labels[i]) {
            top5_err += 1;
        }
    }
    let software = Table3Row {
        config: "Software".into(),
        top1: top1_err as f64 / n as f64,
        top5: top5_err as f64 / n as f64,
    };

    let wl = bench::workload("alexnet"); // reload (network moved above)
    let uncorrected = {
        let config = AccelConfig::new(ProtectionScheme::None)
            .with_cell_bits(2)
            .with_fault_rate(0.0);
        let r = evaluate_config(&wl, &config, 41);
        Table3Row {
            config: "Uncorrected".into(),
            top1: r.misclassification,
            top5: r.top5,
        }
    };
    let abn9 = {
        let config = AccelConfig::new(ProtectionScheme::data_aware(9))
            .with_cell_bits(2)
            .with_fault_rate(0.0);
        let r = evaluate_config(&wl, &config, 41);
        Table3Row {
            config: "ABN-9".into(),
            top1: r.misclassification,
            top5: r.top5,
        }
    };

    println!("\n=== Table III: AlexNet-proxy accuracy ===");
    println!("{:<14} {:>8} {:>8}   (paper top1/top5)", "config", "top1", "top5");
    for (row, paper) in [
        (&software, "42.96% / 19.74%"),
        (&uncorrected, "48.3% / 21.3%"),
        (&abn9, "43.9% / 20.1%"),
    ] {
        println!(
            "{:<14} {:>7.2}% {:>7.2}%   ({paper})",
            row.config,
            row.top1 * 100.0,
            row.top5 * 100.0
        );
    }
    write_json("table3_alexnet", &vec![software, uncorrected, abn9]);
}
