//! Extension ablation: multiresidue detection (A·B₁·B₂ codes, Rao's
//! construction referenced in §V-B3) — how much miscorrection escape
//! probability extra residues buy per check bit.
//!
//! Usage: `cargo run --release -p bench --bin ablation_multiresidue`

use ancode::multiresidue::MultiResidueCode;
use ancode::{AnCode, CorrectionPolicy, CorrectionTable};
use serde::Serialize;
use wideint::{I256, U256};

#[derive(Serialize)]
struct ResidueRow {
    bs: Vec<u64>,
    check_bits: u32,
    theoretical_escape: f64,
    measured_silent_escapes: u64,
    trials: u64,
}

fn main() {
    let an = AnCode::new(79).unwrap();
    let table = CorrectionTable::for_single_bit_prefix(&an, 39);
    println!(
        "{:<14} {:>6} {:>14} {:>16}",
        "residues", "bits", "theory escape", "measured escapes"
    );
    let mut rows = Vec::new();
    for bs in [vec![3u64], vec![3, 5], vec![3, 5, 7]] {
        let code = MultiResidueCode::new(79, &bs, table.clone(), 24).unwrap();
        let clean = code.encode(U256::from(500_000u64)).unwrap();
        let trials = 20_000u64;
        let mut silent = 0u64;
        for e in 1..=trials {
            let out = code.decode(
                I256::from(clean) + I256::from_i128(e as i128 * 7 + 1),
                CorrectionPolicy::Revert,
            );
            if out.status.is_trusted() && out.value.to_i128() != Some(500_000) {
                silent += 1;
            }
        }
        println!(
            "{:<14} {:>6} {:>14.4} {:>12}/{}",
            format!("{bs:?}"),
            code.check_bits(),
            code.escape_probability(),
            silent,
            trials
        );
        rows.push(ResidueRow {
            bs,
            check_bits: code.check_bits(),
            theoretical_escape: code.escape_probability(),
            measured_silent_escapes: silent,
            trials,
        });
    }
    bench::write_json("ablation_multiresidue", &rows);
}
