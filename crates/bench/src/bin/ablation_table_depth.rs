//! Ablation: error-event depth in data-aware allocation (§V-B1).
//!
//! The allocator ranks combinations of up to `k` physical rows. This
//! sweep varies `k` from 1 (single-row events only) to 4 (the paper's
//! sparse-syndrome limit) and reports covered probability and accuracy.
//!
//! Usage: `cargo run --release -p bench --bin ablation_table_depth`

use accel::{AccelConfig, ProtectionScheme};
use bench::{evaluate_config, workload, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct DepthRow {
    max_rows_per_event: usize,
    misclassification: f64,
}

fn main() {
    let wl = workload("mlp1");
    let mut rows = Vec::new();
    println!("=== Ablation: syndrome event depth (ABN-10, 3-bit cells) ===");
    for depth in 1..=4usize {
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(10))
            .with_cell_bits(3)
            .with_fault_rate(0.0);
        config.error_list.max_rows_per_event = depth;
        let row = evaluate_config(&wl, &config, 800);
        println!(
            "events of ≤{depth} rows: misclass {:.2}%",
            row.misclassification * 100.0
        );
        rows.push(DepthRow {
            max_rows_per_event: depth,
            misclassification: row.misclassification,
        });
    }
    write_json("ablation_table_depth", &rows);
}
