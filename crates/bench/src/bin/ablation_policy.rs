//! Ablation: uncorrectable-error handling (§VI-A).
//!
//! Compares the three handling options on MLP1 at an aggressive design
//! point (4-bit cells, where uncorrectable events actually occur):
//! keep the flagged correction, revert to the detected value, or retry
//! the read.
//!
//! Usage: `cargo run --release -p bench --bin ablation_policy`

use accel::{AccelConfig, ProtectionScheme};
use ancode::CorrectionPolicy;
use bench::{evaluate_config, workload, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    retries: u32,
    misclassification: f64,
}

fn main() {
    let wl = workload("mlp1");
    let mut rows = Vec::new();
    println!("=== Ablation: uncorrectable-error policy (ABN-8, 4-bit cells) ===");
    for (label, policy, retries) in [
        ("keep-corrected", CorrectionPolicy::KeepCorrected, 0u32),
        ("revert", CorrectionPolicy::Revert, 0),
        ("retry×2", CorrectionPolicy::Revert, 2),
    ] {
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(8))
            .with_cell_bits(4)
            .with_fault_rate(0.0);
        config.policy = policy;
        config.max_retries = retries;
        let row = evaluate_config(&wl, &config, 600);
        println!(
            "{label:<16} misclass {:.2}%  (ECU error rate {:.3}%)",
            row.misclassification * 100.0,
            row.decode_error_rate * 100.0
        );
        rows.push(PolicyRow {
            policy: label.into(),
            retries,
            misclassification: row.misclassification,
        });
    }
    write_json("ablation_policy", &rows);
}
