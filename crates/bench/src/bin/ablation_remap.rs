//! Extension ablation: fault-aware row remapping on top of the
//! data-aware codes (the Xia-et-al. direction of §II-C6), at an
//! elevated fault rate where placement matters.
//!
//! Usage: `cargo run --release -p bench --bin ablation_remap`

use accel::{remap, AccelConfig, ProtectionScheme};
use bench::{evaluate_config, workload, write_json};
use neural::QuantizedMatrix;
use rand_chacha::rand_core::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct RemapRow {
    remapped: bool,
    misclassification: f64,
    flip_rate: f64,
}

fn main() {
    let wl = workload("mlp1");
    let config = AccelConfig::new(ProtectionScheme::data_aware(9))
        .with_cell_bits(4)
        .with_fault_rate(5e-3); // elevated wear-out regime

    // Baseline: original row order.
    let base = evaluate_config(&wl, &config, 900);
    println!(
        "original order: misclass {:.2}% flips {:.2}%",
        base.misclassification * 100.0,
        base.flip_rate * 100.0
    );

    // Demonstrate the remap machinery on the first layer's matrix.
    let matrices = wl.quantized.mvm_matrices();
    let first: &QuantizedMatrix = matrices[0];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(900);
    let plan = remap::fault_aware_order(first.rows(), &config, &mut rng);
    let moved = plan
        .order
        .iter()
        .enumerate()
        .filter(|(i, &o)| *i != o)
        .count();
    println!(
        "remap plan for layer 1: {} of {} rows moved across {} groups",
        moved,
        plan.order.len(),
        plan.group_scores.len()
    );

    write_json(
        "ablation_remap",
        &vec![RemapRow {
            remapped: false,
            misclassification: base.misclassification,
            flip_rate: base.flip_rate,
        }],
    );
}
