//! Ablation: the RTN offset calibration of §IV.
//!
//! The paper programs resistances offset by `p·ΔR` so the time-averaged
//! current matches the target (replacing Hu et al.'s calibration-vector
//! scheme). This ablation disables the offset and measures the damage.
//!
//! Usage: `cargo run --release -p bench --bin ablation_rtn_offset`

use accel::{AccelConfig, ProtectionScheme};
use bench::{evaluate_config, workload, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct OffsetRow {
    rtn_offset: bool,
    scheme: String,
    misclassification: f64,
}

fn main() {
    let wl = workload("mlp1");
    let mut rows = Vec::new();
    println!("=== Ablation: RTN offset calibration (2-bit cells) ===");
    for offset in [true, false] {
        for scheme in [ProtectionScheme::None, ProtectionScheme::data_aware(9)] {
            let mut config = AccelConfig::new(scheme.clone())
                .with_cell_bits(2)
                .with_fault_rate(0.0);
            config.device.rtn_offset = offset;
            let row = evaluate_config(&wl, &config, 700);
            println!(
                "offset={offset:<5} {:<8} misclass {:.2}%",
                scheme.label(),
                row.misclassification * 100.0
            );
            rows.push(OffsetRow {
                rtn_offset: offset,
                scheme: scheme.label(),
                misclassification: row.misclassification,
            });
        }
    }
    write_json("ablation_rtn_offset", &rows);
}
