//! Regenerates Figure 12: MLP1 misclassification sensitivity to the
//! low-resistance-state RTN amplitude (`R_LO ΔR/R` ∈ 1.4–4.2 %) and to
//! the RTN error-state probability (17–37 %), at 2 bits per cell.
//!
//! Usage: `cargo run --release -p bench --bin fig12_sensitivity`

use accel::AccelConfig;
use bench::{evaluate_config, figure_schemes, workload, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    axis: &'static str,
    value: f64,
    scheme: String,
    misclassification: f64,
}

fn main() {
    // The paper sweeps at 2 bits/cell; in this repository's device model
    // that design point is flip-free, so REPRO_CELL_BITS lets the sweep
    // be regenerated where the sensitivity is visible (e.g. 4).
    let cell_bits: u32 = std::env::var("REPRO_CELL_BITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let wl = workload("mlp1");
    println!(
        "software misclassification: {:.2}%",
        wl.software_error * 100.0
    );
    let mut points = Vec::new();

    // Left panel: R_LO ΔR/R sweep (R_HI ΔR/R stays pinned near its 50 %
    // saturation value by construction of the Ielmini model).
    for &drr in &[0.014, 0.021, 0.028, 0.035, 0.042] {
        for scheme in figure_schemes() {
            let mut config = AccelConfig::new(scheme.clone())
                .with_cell_bits(cell_bits)
                .with_fault_rate(0.0);
            config.device = config.device.with_rlo_delta_r(drr);
            let row = evaluate_config(&wl, &config, 31_000 + (drr * 1e4) as u64);
            println!(
                "ΔR/R(R_LO)={:.1}%  {:<10} -> {:.2}%",
                drr * 100.0,
                scheme.label(),
                row.misclassification * 100.0
            );
            points.push(SweepPoint {
                axis: "rlo_drr",
                value: drr,
                scheme: scheme.label(),
                misclassification: row.misclassification,
            });
        }
    }

    // Right panel: RTN error-state probability sweep.
    for &p in &[0.17, 0.22, 0.27, 0.32, 0.37] {
        for scheme in figure_schemes() {
            let mut config = AccelConfig::new(scheme.clone())
                .with_cell_bits(cell_bits)
                .with_fault_rate(0.0);
            config.device.rtn_state_probability = p;
            let row = evaluate_config(&wl, &config, 32_000 + (p * 1e3) as u64);
            println!(
                "p_RTN={:.0}%  {:<10} -> {:.2}%",
                p * 100.0,
                scheme.label(),
                row.misclassification * 100.0
            );
            points.push(SweepPoint {
                axis: "rtn_probability",
                value: p,
                scheme: scheme.label(),
                misclassification: row.misclassification,
            });
        }
    }

    write_json("fig12_sensitivity", &points);
}
