//! End-to-end tests of the `repro-lint` binary: builds a throwaway
//! mini-workspace on disk, seeds violations, and asserts on real
//! process exit codes — the same contract `scripts/check.sh` relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-lint-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/accel/src")).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    dir
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, content).expect("write");
}

fn run_lint(root: &Path, args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro-lint"))
        .arg(args[0])
        .args(["--root", root.to_str().expect("utf8 root")])
        .args(&args[1..])
        .output()
        .expect("spawn repro-lint");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    (output.status.code().unwrap_or(-1), stdout)
}

#[test]
fn seeded_violation_fails_and_baseline_suppresses_it() {
    let root = temp_workspace("seeded");
    write(
        &root,
        "crates/accel/src/sim.rs",
        "fn shard() { let x: Option<u32> = None; x.unwrap(); }\n\
         #[cfg(test)]\nmod tests { fn t() { let y: Option<u32> = None; y.unwrap(); } }\n",
    );

    // No baseline: the seeded violation must fail the check (exit 1)
    // and be reported machine-readably.
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(
        out.contains("crates/accel/src/sim.rs:1: panic_in_harness"),
        "missing file:line report:\n{out}"
    );
    // The cfg(test) unwrap must not be reported.
    assert!(!out.contains("sim.rs:3"), "test-region unwrap leaked:\n{out}");

    // Record the baseline: check now passes (exit 0).
    let (code, out) = run_lint(&root, &["baseline"]);
    assert_eq!(code, 0, "baseline write failed:\n{out}");
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "baselined violation still fails:\n{out}");
    assert!(out.contains("1 baseline-suppressed"), "{out}");

    // A *new* violation on top of the baseline fails again.
    write(
        &root,
        "crates/accel/src/sim.rs",
        "fn shard() { let x: Option<u32> = None; x.unwrap(); }\n\
         fn fresh() { panic!(\"new\"); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "new violation not caught:\n{out}");
    assert!(out.contains("REGRESSION"), "{out}");

    // Fixing *both* makes the baseline stale — also a failure, with a
    // pointer at the regeneration command.
    write(&root, "crates/accel/src/sim.rs", "fn shard() {}\n");
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "stale baseline not caught:\n{out}");
    assert!(out.contains("STALE BASELINE"), "{out}");
    assert!(out.contains("repro-lint -- baseline"), "{out}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_workspace_passes_and_list_enumerates() {
    let root = temp_workspace("clean");
    write(
        &root,
        "crates/core/src/an.rs",
        "pub fn residue(v: u64, a: u64) -> u64 { v % a }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "{out}");

    // `list` prints raw violations without baseline filtering.
    write(
        &root,
        "crates/core/src/an.rs",
        "pub fn low(v: u64) -> u32 { v as u32 }\n",
    );
    let (code, out) = run_lint(&root, &["list"]);
    assert_eq!(code, 1);
    assert!(out.contains("crates/core/src/an.rs:1: lossy_cast"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn allow_comment_with_reason_passes_without_baseline() {
    let root = temp_workspace("allow");
    write(
        &root,
        "crates/wideint/src/u256.rs",
        "pub fn low(v: u128) -> u64 {\n\
         // lint: allow(lossy_cast, intentional low-limb extraction)\n\
         v as u64\n\
         }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "{out}");

    // Dropping the reason turns the allow itself into a violation.
    write(
        &root,
        "crates/wideint/src/u256.rs",
        "pub fn low(v: u128) -> u64 {\n\
         // lint: allow(lossy_cast)\n\
         v as u64\n\
         }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1);
    assert!(out.contains("bare_allow"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn usage_errors_exit_2() {
    let root = temp_workspace("usage");
    let (code, out) = run_lint(&root, &["frobnicate"]);
    assert_eq!(code, 2, "{out}");
    let output = Command::new(env!("CARGO_BIN_EXE_repro-lint"))
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}
