//! End-to-end tests of the `repro-lint` binary: builds a throwaway
//! mini-workspace on disk, seeds violations, and asserts on real
//! process exit codes — the same contract `scripts/check.sh` relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-lint-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/accel/src")).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    dir
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, content).expect("write");
}

fn run_lint(root: &Path, args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro-lint"))
        .arg(args[0])
        .args(["--root", root.to_str().expect("utf8 root")])
        .args(&args[1..])
        .output()
        .expect("spawn repro-lint");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    (output.status.code().unwrap_or(-1), stdout)
}

#[test]
fn seeded_panic_reachability_fails_and_baseline_suppresses_it() {
    let root = temp_workspace("seeded");
    // `accel::sim::evaluate` is a crash-safe entry point; the unwrap
    // it reaches through `shard` must be flagged, the one in the test
    // module must not (test code is out of scope).
    write(
        &root,
        "crates/accel/src/sim.rs",
        "pub fn evaluate() { shard(); }\n\
         fn shard() { let x: Option<u32> = None; x.unwrap(); }\n\
         #[cfg(test)]\nmod tests { fn t() { let y: Option<u32> = None; y.unwrap(); } }\n",
    );

    // No baseline: the seeded violation must fail the check (exit 1)
    // and be reported machine-readably.
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(
        out.contains("crates/accel/src/sim.rs:2: panic_reachability"),
        "missing file:line report:\n{out}"
    );
    assert!(
        out.contains("reachable from crash-safe entry `accel::sim::evaluate`"),
        "missing origin trace:\n{out}"
    );
    // The cfg(test) unwrap must not be reported.
    assert!(!out.contains("sim.rs:5"), "test-region unwrap leaked:\n{out}");

    // Record the baseline: check now passes (exit 0).
    let (code, out) = run_lint(&root, &["baseline"]);
    assert_eq!(code, 0, "baseline write failed:\n{out}");
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "baselined violation still fails:\n{out}");
    assert!(out.contains("1 baseline-suppressed"), "{out}");

    // A *new* reachable panic on top of the baseline fails again.
    write(
        &root,
        "crates/accel/src/sim.rs",
        "pub fn evaluate() { shard(); fresh(); }\n\
         fn shard() { let x: Option<u32> = None; x.unwrap(); }\n\
         fn fresh() { panic!(\"new\"); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "new violation not caught:\n{out}");
    assert!(out.contains("REGRESSION"), "{out}");

    // Fixing *both* makes the baseline stale — also a failure, with a
    // pointer at the regeneration command.
    write(&root, "crates/accel/src/sim.rs", "pub fn evaluate() {}\n");
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "stale baseline not caught:\n{out}");
    assert!(out.contains("STALE BASELINE"), "{out}");
    assert!(out.contains("repro-lint -- baseline"), "{out}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn panic_reachability_respects_catch_unwind_and_dead_code() {
    let root = temp_workspace("unwind");
    // The unwrap inside the catch_unwind closure is shielded; the
    // unwrap in `orphan` is unreachable from any entry point. Neither
    // may be reported.
    write(
        &root,
        "crates/accel/src/sim.rs",
        "pub fn evaluate() {\n\
           let r = std::panic::catch_unwind(|| { shard() });\n\
         }\n\
         fn shard() { let x: Option<u32> = None; x.unwrap(); }\n\
         fn orphan() { let y: Option<u32> = None; y.unwrap(); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "shielded/dead panics were flagged:\n{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_seam_coverage_flags_raw_io_until_routed_through_seam() {
    let root = temp_workspace("seam");
    write(
        &root,
        "crates/accel/src/campaign.rs",
        "fn save(p: &std::path::Path) { std::fs::write(p, b\"x\"); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "raw write not caught:\n{out}");
    assert!(
        out.contains("crates/accel/src/campaign.rs:1: chaos_seam_coverage"),
        "{out}"
    );

    // Routing through the chaos seam clears the finding; the same raw
    // call outside the seam scope was never in scope to begin with.
    write(
        &root,
        "crates/accel/src/campaign.rs",
        "fn save(p: &std::path::Path, fault: Option<IoFault>) {\n\
           chaos::fs::write_atomic(p, b\"x\", fault);\n\
         }\n",
    );
    write(
        &root,
        "crates/accel/src/engine.rs",
        "fn scratch(p: &std::path::Path) { std::fs::write(p, b\"x\"); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "seam-routed write still flagged:\n{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn schema_drift_cross_checks_emit_sites_against_schema() {
    let root = temp_workspace("schema");
    let schema = "pub const VERSION: u64 = 3;\n\
        const U64: FieldKind = FieldKind::U64;\n\
        const STR: FieldKind = FieldKind::Str;\n\
        pub const EVENTS: &[EventSpec] = &[\n\
          EventSpec {\n\
            event_type: \"shard_done\",\n\
            fields: &[field(\"shard\", U64), field(\"reason\", STR)],\n\
          },\n\
        ];\n";
    write(&root, "crates/obs/src/schema.rs", schema);
    write(
        &root,
        "crates/accel/src/sim.rs",
        "fn a() { emit(Event::new(\"shard_done\").u64(\"shard\", s).u64(\"reason\", r)); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1, "drifted emit site not caught:\n{out}");
    assert!(out.contains("crates/accel/src/sim.rs:1: schema_drift"), "{out}");
    assert!(out.contains("requires `.str(\"reason\", ..)`"), "{out}");

    // An emit site matching the schema pins the zero-finding state.
    write(
        &root,
        "crates/accel/src/sim.rs",
        "fn a() { emit(Event::new(\"shard_done\").u64(\"shard\", s).str(\"reason\", r)); }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "schema-conformant emit site flagged:\n{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn json_format_emits_machine_readable_report() {
    let root = temp_workspace("json");
    write(
        &root,
        "crates/core/src/an.rs",
        "pub fn low(v: u64) -> u32 { v as u32 }\n",
    );
    let (code, out) = run_lint(&root, &["check", "--format", "json"]);
    assert_eq!(code, 1, "{out}");
    // Stable top-level shape consumed by CI tooling.
    assert!(out.contains("\"tool\": \"repro-lint\""), "{out}");
    assert!(out.contains("\"schema_version\": 1"), "{out}");
    assert!(out.contains("\"passed\": false"), "{out}");
    assert!(out.contains("\"totals\": {\"lossy_cast\": 1}"), "{out}");
    assert!(
        out.contains(
            "{\"file\": \"crates/core/src/an.rs\", \"line\": 1, \"lint\": \"lossy_cast\","
        ),
        "{out}"
    );
    assert!(out.contains("\"kind\": \"regression\""), "{out}");

    // After recording the baseline the same run passes, still as JSON.
    let (code, _) = run_lint(&root, &["baseline"]);
    assert_eq!(code, 0);
    let (code, out) = run_lint(&root, &["check", "--format", "json"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"passed\": true"), "{out}");
    assert!(out.contains("\"drifts\": []"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_workspace_passes_and_list_enumerates() {
    let root = temp_workspace("clean");
    write(
        &root,
        "crates/core/src/an.rs",
        "pub fn residue(v: u64, a: u64) -> u64 { v % a }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "{out}");

    // `list` prints raw violations without baseline filtering.
    write(
        &root,
        "crates/core/src/an.rs",
        "pub fn low(v: u64) -> u32 { v as u32 }\n",
    );
    let (code, out) = run_lint(&root, &["list"]);
    assert_eq!(code, 1);
    assert!(out.contains("crates/core/src/an.rs:1: lossy_cast"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn allow_comment_with_reason_passes_without_baseline() {
    let root = temp_workspace("allow");
    write(
        &root,
        "crates/wideint/src/u256.rs",
        "pub fn low(v: u128) -> u64 {\n\
         // lint: allow(lossy_cast, intentional low-limb extraction)\n\
         v as u64\n\
         }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 0, "{out}");

    // Dropping the reason turns the allow itself into a violation.
    write(
        &root,
        "crates/wideint/src/u256.rs",
        "pub fn low(v: u128) -> u64 {\n\
         // lint: allow(lossy_cast)\n\
         v as u64\n\
         }\n",
    );
    let (code, out) = run_lint(&root, &["check"]);
    assert_eq!(code, 1);
    assert!(out.contains("bare_allow"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn usage_errors_exit_2() {
    let root = temp_workspace("usage");
    let (code, out) = run_lint(&root, &["frobnicate"]);
    assert_eq!(code, 2, "{out}");
    let (code, out) = run_lint(&root, &["check", "--format", "yaml"]);
    assert_eq!(code, 2, "{out}");
    let output = Command::new(env!("CARGO_BIN_EXE_repro-lint"))
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}
