//! The per-file lint passes, plus the [`LintId`] / [`Violation`] types
//! shared with the cross-file analyzer ([`crate::cross`]).
//!
//! Each per-file lint walks the token stream of one file (see
//! [`crate::lexer`]) and reports violations with a stable
//! machine-readable identity: `file:line: lint_id: message`. Scoping
//! is path-based — every lint declares which workspace files it
//! guards — and test code (`#[cfg(test)]` regions, `tests/`
//! directories) is always exempt.
//!
//! Suppression: a violation is silenced by a comment on the same line
//! or the line directly above of the form
//! `// lint: allow(<lint_id>, <reason>)`. The reason is mandatory; an
//! allow without one is itself reported.

use crate::lexer::{Lexed, Token, TokenKind};

/// Identifier of one lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// L1: `.unwrap()` / `.expect(` / `panic!` / `unreachable!` /
    /// (opt-in) indexing transitively reachable from a crash-safe
    /// entry point with no `catch_unwind` on the path (see
    /// [`crate::cross`]). Supersedes the per-file `panic_in_harness`
    /// scope list of earlier releases.
    PanicReachability,
    /// L2: potentially lossy `as` numeric casts in the arithmetic
    /// substrate.
    LossyCast,
    /// L3: nondeterminism sources (`HashMap`/`HashSet`, wall clocks) in
    /// deterministic simulation paths.
    Nondeterminism,
    /// L4: float `==` / `!=` comparisons outside tests.
    FloatEq,
    /// L5: raw `std::fs` / `std::net` call sites in the chaos-tested
    /// persistence and service paths that bypass the fault-injection
    /// seams (`chaos::fs`, threaded `Seam` faults). Generalizes the
    /// old `raw_file_write` lint to reads, renames, and sockets.
    ChaosSeamCoverage,
    /// L6: an obs event emit site whose field names/types/order do not
    /// match `obs::schema` (see [`crate::cross`]).
    SchemaDrift,
    /// Meta: a `lint: allow(...)` comment without a reason.
    BareAllow,
}

impl LintId {
    /// Stable snake_case name used in reports, baselines, and allow
    /// comments.
    pub fn name(self) -> &'static str {
        match self {
            LintId::PanicReachability => "panic_reachability",
            LintId::LossyCast => "lossy_cast",
            LintId::Nondeterminism => "nondeterminism",
            LintId::FloatEq => "float_eq",
            LintId::ChaosSeamCoverage => "chaos_seam_coverage",
            LintId::SchemaDrift => "schema_drift",
            LintId::BareAllow => "bare_allow",
        }
    }

    /// All lints, in report order.
    pub fn all() -> [LintId; 7] {
        [
            LintId::PanicReachability,
            LintId::LossyCast,
            LintId::Nondeterminism,
            LintId::FloatEq,
            LintId::ChaosSeamCoverage,
            LintId::SchemaDrift,
            LintId::BareAllow,
        ]
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: LintId,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the offending construct.
    pub message: String,
}

impl Violation {
    /// The canonical `file:line: lint: message` report line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// Files guarded by L2 (`lossy_cast`): the fixed-width arithmetic
/// substrate, where a silent truncation corrupts coded operands.
fn in_cast_scope(path: &str) -> bool {
    path.starts_with("crates/wideint/src/") || path.starts_with("crates/core/src/")
}

/// Files guarded by L3 (`nondeterminism`): everything the draw-order
/// invariant and checkpoint byte-stability depend on, plus the
/// observability crate — metrics must never feed seeded computation, so
/// its one wall-clock site (`obs::clock`) has to carry a reasoned allow.
fn in_determinism_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/xbar/src/")
        || path.starts_with("crates/obs/src/")
        || path.starts_with("crates/chaos/src/")
        || path.starts_with("crates/accel/src/sim/")
        || path == "crates/accel/src/campaign.rs"
}

/// Cast targets L2 considers potentially lossy. Casts to `u128`/`i128`
/// are treated as widening and skipped (known gap: a negative signed
/// value `as u128` wraps; that pattern does not occur in the guarded
/// crates). `f32`/`f64` are included because neither represents every
/// 64-bit integer exactly.
const NARROWING_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

/// Runs every applicable per-file lint over one lexed file. The
/// cross-file lints (`panic_reachability`, `chaos_seam_coverage`,
/// `schema_drift`) live in [`crate::cross`] and run once over the
/// whole workspace.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    let tokens = &lexed.tokens;

    if in_cast_scope(path) {
        lint_casts(path, tokens, &mut out);
    }
    if in_determinism_scope(path) {
        lint_nondeterminism(path, tokens, &mut out);
    }
    lint_float_eq(path, tokens, &mut out);
    lint_bare_allows(path, lexed, &mut out);

    // Apply `lint: allow(...)` suppressions, then sort for stable
    // reports.
    out.retain(|v| v.lint == LintId::BareAllow || !is_allowed(lexed, v));
    out.sort_by(|a, b| (a.line, a.lint, &a.message).cmp(&(b.line, b.lint, &b.message)));
    out
}

/// L2: `expr as <narrower numeric>` casts.
fn lint_casts(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        // `use x as y` / `extern crate x as y`: the rename target is an
        // arbitrary ident, but never one of the primitive type names.
        let Some(next) = tokens.get(i + 1) else { continue };
        if next.kind != TokenKind::Ident {
            continue;
        }
        if NARROWING_TARGETS.contains(&next.text.as_str()) {
            out.push(Violation {
                lint: LintId::LossyCast,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`as {}` may truncate or lose precision; use From/try_into or annotate \
                     `// lint: allow(lossy_cast, <why it cannot lose value>)`",
                    next.text
                ),
            });
        }
    }
}

/// L3: hash-order iteration and wall-clock reads in deterministic
/// simulation paths.
fn lint_nondeterminism(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for t in tokens {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let reason = match t.text.as_str() {
            "HashMap" | "HashSet" => {
                "iteration order is seeded per-process; use BTreeMap/BTreeSet or an indexed Vec"
            }
            "Instant" | "SystemTime" => {
                "wall-clock reads make simulation output time-dependent; thread time through \
                 the caller if needed"
            }
            _ => continue,
        };
        out.push(Violation {
            lint: LintId::Nondeterminism,
            file: path.to_string(),
            line: t.line,
            message: format!("{} in a deterministic simulation path: {reason}", t.text),
        });
    }
}

/// L4: `==` / `!=` with a float-literal operand.
///
/// Token-level type inference is impossible, so this flags the
/// detectable case — a comparison where either adjacent token is a
/// float literal (`x == 0.0`). Float comparisons against variables
/// escape it; the golden tests backstop those.
fn lint_float_eq(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_beside = [i.checked_sub(1).map(|p| &tokens[p]), tokens.get(i + 1)]
            .into_iter()
            .flatten()
            .any(|n| matches!(n.kind, TokenKind::Num { is_float: true }));
        if float_beside {
            out.push(Violation {
                lint: LintId::FloatEq,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "float `{}` comparison; prefer total_cmp, abs-epsilon, or an integer \
                     representation",
                    t.text
                ),
            });
        }
    }
}

/// Meta-lint: `lint: allow(...)` comments must carry a reason.
fn lint_bare_allows(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    for comment in &lexed.comments {
        let Some(body) = allow_body(&comment.text) else {
            continue;
        };
        let mut parts = body.splitn(2, ',');
        let _lint_name = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim();
        if reason.is_empty() {
            out.push(Violation {
                lint: LintId::BareAllow,
                file: path.to_string(),
                line: comment.line,
                message: "lint: allow(...) without a reason; write \
                          `// lint: allow(<lint>, <why this is safe>)`"
                    .to_string(),
            });
        }
    }
}

/// Extracts the `...` of a `lint: allow(...)` directive comment.
///
/// Only a plain `//` comment whose content *starts with* the directive
/// counts — doc comments (`///`, `//!`) and prose that merely mentions
/// the syntax are never suppressions.
fn allow_body(comment: &str) -> Option<&str> {
    let body = comment.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let rest = body.trim_start().strip_prefix("lint: allow(")?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

/// Whether `v` is suppressed by an allow comment naming its lint on the
/// same line or the line directly above. Exposed to the crate so the
/// cross-file lints honour the same suppression syntax.
pub(crate) fn is_allowed(lexed: &Lexed, v: &Violation) -> bool {
    lexed.comments.iter().any(|c| {
        (c.line == v.line || c.line + 1 == v.line)
            && allow_body(&c.text).is_some_and(|body| {
                let mut parts = body.splitn(2, ',');
                let name = parts.next().unwrap_or("").trim();
                let reason = parts.next().unwrap_or("").trim();
                name == v.lint.name() && !reason.is_empty()
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, &lex(src))
    }

    #[test]
    fn doc_comments_and_strings_do_not_fire() {
        let src = "/// Checks `x == 0.0` exactly.\n\
                   fn f() { let s = \"x == 0.0\"; let _ = s; }";
        assert!(run("crates/accel/src/engine.rs", src).is_empty());
    }

    #[test]
    fn cast_lint_flags_narrowing_and_honours_allow() {
        let src = "fn f(x: u64) -> u8 {\n\
                   let a = x as u8;\n\
                   // lint: allow(lossy_cast, low byte extraction is intentional)\n\
                   let b = x as u8;\n\
                   let c = x as u128;\n\
                   let _ = (a, b, c);\n\
                   a\n\
                   }";
        let hits = run("crates/wideint/src/u256.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].lint, LintId::LossyCast);
    }

    #[test]
    fn cast_lint_ignores_use_renames_and_out_of_scope_files() {
        let src = "use std::io::Error as IoError;\nfn f(x: u64) -> u32 { x as u32 }";
        let hits = run("crates/core/src/an.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert!(run("crates/accel/src/cost.rs", src).is_empty());
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // lint: allow(lossy_cast, x < 2^32 by construction)";
        assert!(run("crates/core/src/an.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_itself_reported() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // lint: allow(lossy_cast)";
        let hits = run("crates/core/src/an.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|v| v.lint == LintId::BareAllow));
        assert!(hits.iter().any(|v| v.lint == LintId::LossyCast));
    }

    #[test]
    fn nondeterminism_lint_flags_hash_collections_and_clocks() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let t = std::time::Instant::now(); let _ = t; }";
        let hits = run("crates/xbar/src/device.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|v| v.lint == LintId::Nondeterminism));
        // The bench crate may time things: out of scope.
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nondeterminism_lint_covers_obs_and_honors_reasoned_allow() {
        // The observability crate is in L3 scope: a bare clock read is
        // flagged...
        let bare = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        let hits = run("crates/obs/src/clock.rs", bare);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, LintId::Nondeterminism);
        // ...while the audited epoch site carries a reasoned allow
        // (the shape `crates/obs/src/clock.rs` actually uses).
        let allowed = "// lint: allow(nondeterminism, obs timings never feed seeded \
                       computation)\nfn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert!(run("crates/obs/src/clock.rs", allowed).is_empty());
    }

    #[test]
    fn float_eq_lint_is_workspace_wide_and_literal_driven() {
        let src = "fn f(x: f64, y: f64) -> bool { x == 0.0 || y != 1.5 || x == y }";
        let hits = run("crates/bench/src/lib.rs", src);
        // x == y escapes the literal heuristic by design.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|v| v.lint == LintId::FloatEq));
        // Integer comparisons never fire.
        assert!(run("crates/bench/src/lib.rs", "fn g(n: u32) -> bool { n == 0 }").is_empty());
    }

    #[test]
    fn nondeterminism_scope_covers_chaos_crate() {
        let src = "use std::collections::HashMap;\nfn f() {}";
        let hits = run("crates/chaos/src/schedule.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, LintId::Nondeterminism);
    }

    #[test]
    fn render_is_machine_readable() {
        let src = "fn f(x: u64) -> u8 { x as u8 }";
        let hits = run("crates/core/src/an.rs", src);
        assert_eq!(
            hits[0].render(),
            "crates/core/src/an.rs:1: lossy_cast: `as u8` may truncate or lose precision; \
             use From/try_into or annotate \
             `// lint: allow(lossy_cast, <why it cannot lose value>)`"
        );
    }
}
