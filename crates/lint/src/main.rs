//! CLI wrapper around [`repro_lint::run`]; see the library docs for the
//! lint inventory and `lint-baseline.toml` workflow.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut stdout = std::io::stdout();
    ExitCode::from(repro_lint::run(&args, &cwd, &mut stdout).clamp(0, u8::MAX as i32) as u8)
}
