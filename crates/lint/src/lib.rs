//! `repro-lint` — the workspace invariant checker.
//!
//! A from-scratch, dependency-free static-analysis pass over the
//! first-party crates. The reproduction's reliability claims lean on
//! two properties that `rustc` cannot enforce — the RNG **draw-order
//! invariant** (bit-identical simulation output regardless of
//! threading, checkpointing, or refactors) and the **crash-safety
//! contract** (typed [`AccelError`]s instead of panics in the
//! Monte-Carlo harness) — so this crate enforces them mechanically.
//!
//! Since the call-graph upgrade the analyzer is syntax-aware: every
//! file is lexed ([`lexer`]), parsed into items ([`parser`]), and
//! joined into a workspace call graph ([`graph`]) that the cross-file
//! lints ([`cross`]) walk. The per-file token lints remain in
//! [`lints`].
//!
//! | lint | guards | scope |
//! |------|--------|-------|
//! | `panic_reachability` | panicking constructs with no `catch_unwind` between them and a crash-safe entry point | call graph from `sim::evaluate`, `Campaign::run`, `Service::start` |
//! | `lossy_cast` | narrowing / precision-losing `as` casts | `wideint`, `core` |
//! | `nondeterminism` | `HashMap`/`HashSet`, `Instant`/`SystemTime` | `core`, `xbar`, `obs`, `chaos`, `accel::{sim,campaign}` |
//! | `float_eq` | `==`/`!=` against float literals | whole workspace |
//! | `chaos_seam_coverage` | raw `std::fs` / `std::net` calls that bypass the chaos fault seams | `accel::campaign`, `accel::serve`, `obs::events` |
//! | `schema_drift` | `Event::new(..)` builder chains vs `obs::schema::EVENTS` | every emit site |
//!
//! Test code (`#[cfg(test)]` regions, `tests/` directories) is exempt.
//! Pre-existing violations live in `lint-baseline.toml` (see
//! [`baseline`]); intentional sites are annotated in place with
//! `// lint: allow(<lint>, <reason>)`.
//!
//! Run it as `cargo run -p repro-lint -- check` (add `--format json`
//! for the machine-readable report, `--panic-indexing` to include the
//! advisory indexing heuristic).
//!
//! [`AccelError`]: https://docs.rs/ (the `accel` crate's error type)

pub mod baseline;
pub mod cross;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;

use std::path::{Path, PathBuf};

use baseline::{Baseline, Drift};
use lints::Violation;

/// Default baseline path, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// A fatal tool error (I/O, malformed baseline, bad usage).
#[derive(Debug)]
pub struct ToolError(pub String);

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ToolError {}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
///
/// # Errors
///
/// Returns [`ToolError`] when no ancestor holds a workspace manifest.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, ToolError> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(ToolError(format!(
        "no workspace Cargo.toml found above {}",
        start.display()
    )))
}

/// Collects the first-party `.rs` files to lint, as workspace-relative
/// forward-slash paths, sorted.
///
/// Scans `crates/*/src` and `integration/src`; `tests/`, `benches/`,
/// `target/`, and `third_party/` never participate (integration-test
/// and bench code is exempt by construction).
///
/// # Errors
///
/// Returns [`ToolError`] on directory read failures.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, ToolError> {
    let mut files = Vec::new();
    for top in ["crates", "integration"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> Result<(), ToolError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ToolError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ToolError(format!("reading {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "target" | "third_party") {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(rel);
        }
    }
    Ok(())
}

/// Lints every workspace file — the per-file passes plus the
/// cross-file analyzer — and returns all violations, sorted by file,
/// line, lint. Cross-file violations honour the same
/// `// lint: allow(..)` comments as per-file ones, resolved against
/// the file each violation lands in.
///
/// # Errors
///
/// Returns [`ToolError`] on unreadable files.
pub fn collect_violations(
    root: &Path,
    opts: cross::CrossOptions,
) -> Result<Vec<Violation>, ToolError> {
    let mut all = Vec::new();
    let mut files: Vec<(String, lexer::Lexed)> = Vec::new();
    let mut parsed: Vec<parser::ParsedFile> = Vec::new();
    for rel in workspace_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| ToolError(format!("reading {rel}: {e}")))?;
        let lexed = lexer::lex(&source);
        all.extend(lints::check_file(&rel, &lexed));
        parsed.push(parser::parse_file(&rel, &parser::crate_name_of(&rel), &lexed));
        files.push((rel, lexed));
    }
    for v in cross::check_workspace(&files, &parsed, opts) {
        let suppressed = files
            .iter()
            .find(|(path, _)| *path == v.file)
            .is_some_and(|(_, lexed)| lints::is_allowed(lexed, &v));
        if !suppressed {
            all.push(v);
        }
    }
    all.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(all)
}

/// Outcome of a `check` run, for callers that want structure instead of
/// an exit code.
#[derive(Debug)]
pub struct CheckReport {
    /// Every violation found (including baseline-suppressed ones).
    pub violations: Vec<Violation>,
    /// Baseline drift: regressions and stale entries.
    pub drifts: Vec<Drift>,
}

impl CheckReport {
    /// Whether the workspace passes (no drift in either direction).
    pub fn passed(&self) -> bool {
        self.drifts.is_empty()
    }
}

/// Runs the full check against the baseline at `baseline_path`
/// (workspace-relative or absolute). A missing baseline file is an
/// empty baseline, so a fresh workspace needs no setup.
///
/// # Errors
///
/// Returns [`ToolError`] on I/O failure or a malformed baseline file.
pub fn run_check(
    root: &Path,
    baseline_path: &Path,
    opts: cross::CrossOptions,
) -> Result<CheckReport, ToolError> {
    let violations = collect_violations(root, opts)?;
    let resolved = if baseline_path.is_absolute() {
        baseline_path.to_path_buf()
    } else {
        root.join(baseline_path)
    };
    let baseline = match std::fs::read_to_string(&resolved) {
        Ok(text) => Baseline::parse(&text)
            .map_err(|e| ToolError(format!("{}: {e}", resolved.display())))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(ToolError(format!("reading {}: {e}", resolved.display()))),
    };
    let drifts = baseline::compare(&baseline, &violations);
    Ok(CheckReport { violations, drifts })
}

/// Renders a human/CI-readable report of a check run. Lines about
/// individual violations keep the machine-readable
/// `file:line: lint: message` shape.
pub fn render_report(report: &CheckReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if report.passed() {
        let _ = writeln!(
            out,
            "repro-lint: clean ({} baseline-suppressed violation(s))",
            report.violations.len()
        );
        return out;
    }
    for drift in &report.drifts {
        match drift {
            Drift::Regression {
                lint,
                file,
                baseline,
                current,
            } => {
                let _ = writeln!(
                    out,
                    "REGRESSION [{lint}] {file}: {} violation(s), baseline allows {baseline}:",
                    current.len()
                );
                for v in current {
                    let _ = writeln!(out, "  {}", v.render());
                }
            }
            Drift::Stale {
                lint,
                file,
                baseline,
                current,
            } => {
                let _ = writeln!(
                    out,
                    "STALE BASELINE [{lint}] {file}: baseline records {baseline} but only \
                     {current} remain; run `cargo run -p repro-lint -- baseline` to tighten"
                );
            }
        }
    }
    out
}

/// Minimal JSON string escaping (the only non-trivial content is lint
/// messages, which are ASCII prose, but backslashes and quotes in
/// paths or messages must not corrupt the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a check run as a stable machine-readable JSON document
/// (`--format json`): tool identity, pass/fail, per-lint totals, every
/// violation (including baseline-suppressed ones), and the baseline
/// drift that decides the exit code.
pub fn render_json(report: &CheckReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"tool\": \"repro-lint\",\n  \"schema_version\": 1,\n  \"passed\": {},\n",
        report.passed()
    );
    let mut totals: Vec<(&str, usize)> = lints::LintId::all()
        .iter()
        .map(|l| {
            (
                l.name(),
                report.violations.iter().filter(|v| v.lint == *l).count(),
            )
        })
        .filter(|(_, n)| *n > 0)
        .collect();
    totals.sort();
    out.push_str("  \"totals\": {");
    for (i, (name, n)) in totals.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{name}\": {n}");
    }
    out.push_str("},\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.lint.name(),
            json_escape(&v.message)
        );
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"drifts\": [");
    for (i, d) in report.drifts.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let (kind, lint, file, baseline, current) = match d {
            Drift::Regression {
                lint,
                file,
                baseline,
                current,
            } => ("regression", lint, file, *baseline, current.len()),
            Drift::Stale {
                lint,
                file,
                baseline,
                current,
            } => ("stale", lint, file, *baseline, *current as usize),
        };
        let _ = write!(
            out,
            "{sep}\n    {{\"kind\": \"{kind}\", \"lint\": \"{}\", \"file\": \"{}\", \
             \"baseline\": {baseline}, \"current\": {current}}}",
            json_escape(lint),
            json_escape(file)
        );
    }
    if !report.drifts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Entry point shared by `main` and the CLI tests. Returns the process
/// exit code: 0 clean, 1 violations/drift, 2 usage or I/O error.
pub fn run(args: &[String], cwd: &Path, out: &mut dyn std::io::Write) -> i32 {
    match run_inner(args, cwd, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "repro-lint: error: {e}");
            2
        }
    }
}

fn run_inner(
    args: &[String],
    cwd: &Path,
    out: &mut dyn std::io::Write,
) -> Result<i32, ToolError> {
    let mut command: Option<&str> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline_arg: Option<PathBuf> = None;
    let mut format_json = false;
    let mut opts = cross::CrossOptions::default();
    let usage = "usage: repro-lint <check|baseline|list> [--root DIR] [--baseline FILE] \
                 [--format human|json] [--panic-indexing]";
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root_arg = Some(PathBuf::from(iter.next().ok_or_else(|| {
                    ToolError("--root requires a path".to_string())
                })?));
            }
            "--baseline" => {
                baseline_arg = Some(PathBuf::from(iter.next().ok_or_else(|| {
                    ToolError("--baseline requires a path".to_string())
                })?));
            }
            "--format" => {
                let fmt = iter
                    .next()
                    .ok_or_else(|| ToolError("--format requires `human` or `json`".to_string()))?;
                format_json = match fmt.as_str() {
                    "json" => true,
                    "human" => false,
                    other => {
                        return Err(ToolError(format!(
                            "unknown format `{other}` (expected `human` or `json`)"
                        )))
                    }
                };
            }
            "--panic-indexing" => opts.panic_indexing = true,
            "check" | "baseline" | "list" if command.is_none() => command = Some(arg),
            other => {
                return Err(ToolError(format!("unknown argument `{other}` ({usage})")))
            }
        }
    }
    let root = match root_arg {
        Some(r) => r,
        None => find_workspace_root(cwd)?,
    };
    let baseline_path = baseline_arg.unwrap_or_else(|| PathBuf::from(BASELINE_FILE));
    let wr = |out: &mut dyn std::io::Write, s: &str| {
        let _ = out.write_all(s.as_bytes());
    };

    match command {
        Some("check") => {
            let report = run_check(&root, &baseline_path, opts)?;
            if format_json {
                wr(out, &render_json(&report));
            } else {
                wr(out, &render_report(&report));
            }
            Ok(if report.passed() { 0 } else { 1 })
        }
        Some("list") => {
            let violations = collect_violations(&root, opts)?;
            for v in &violations {
                wr(out, &format!("{}\n", v.render()));
            }
            wr(out, &format!("{} violation(s)\n", violations.len()));
            Ok(if violations.is_empty() { 0 } else { 1 })
        }
        Some("baseline") => {
            let violations = collect_violations(&root, opts)?;
            let baseline = Baseline::from_violations(&violations);
            let resolved = if baseline_path.is_absolute() {
                baseline_path
            } else {
                root.join(baseline_path)
            };
            std::fs::write(&resolved, baseline.render())
                .map_err(|e| ToolError(format!("writing {}: {e}", resolved.display())))?;
            wr(
                out,
                &format!(
                    "wrote {} ({} violation(s) recorded)\n",
                    resolved.display(),
                    violations.len()
                ),
            );
            Ok(0)
        }
        _ => Err(ToolError(format!("missing command ({usage})"))),
    }
}
