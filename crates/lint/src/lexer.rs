//! A hand-written token-level lexer for Rust source.
//!
//! The lints in this crate only need token streams, never syntax trees,
//! so the lexer is deliberately small: it distinguishes identifiers,
//! numeric literals (with a float flag), string/char literals, and
//! punctuation, while skipping comments — and it gets the *boundaries*
//! exactly right, because every lint depends on them:
//!
//! - line comments (`//`, `///`, `//!`) run to end of line;
//! - block comments nest (`/* /* */ */` is one comment), matching
//!   rustc;
//! - string literals honour escapes (`"\""` does not end early);
//! - raw strings match their hash count (`r#".."#`, `br##"…"##`);
//! - `'a'` is a char literal but `'a` in `<'a>` is a lifetime;
//! - `0..n` lexes as an integer and a range, not a malformed float.
//!
//! Comments are not discarded: they are collected per line so the lint
//! layer can honour `// lint: allow(...)` suppressions, and a second
//! pass ([`mark_test_regions`]) flags every token that falls under a
//! `#[cfg(test)]` item so lints can skip test code.

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `u64`, …).
    Ident,
    /// Numeric literal; `is_float` is true for `1.5`, `2e-3`, `1f32`.
    Num {
        /// Whether the literal is a float (decimal point, exponent, or
        /// an `f32`/`f64` suffix).
        is_float: bool,
    },
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-character operators the lints care about
    /// (`==`, `!=`, `::`) are fused into one token.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text (for `Str` the raw source slice, quotes included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Set by [`mark_test_regions`]: the token is inside a
    /// `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A comment and the line it starts on (used for `lint: allow(...)`
/// suppression lookups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` sigils.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments, then marks
/// `#[cfg(test)]` regions.
pub fn lex(source: &str) -> Lexed {
    let mut lexed = lex_raw(source);
    mark_test_regions(&mut lexed.tokens);
    lexed
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes without the test-region pass (exposed for lexer tests).
fn lex_raw(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    // Advances `idx` past a `"`-delimited string body (opening quote
    // already consumed), honouring backslash escapes and counting lines.
    let scan_string_body = |idx: &mut usize, line: &mut u32| {
        while *idx < n {
            match chars[*idx] {
                '\\' => *idx += 2,
                '"' => {
                    *idx += 1;
                    return;
                }
                c => {
                    if c == '\n' {
                        *line += 1;
                    }
                    *idx += 1;
                }
            }
        }
    };

    while i < n {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment, like rustc.
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '"' => {
                let start = i;
                i += 1;
                scan_string_body(&mut i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                    in_test: false,
                });
            }
            '\'' => {
                // Char literal vs lifetime: '\x' and 'x' (closing quote
                // right after one char) are chars; otherwise a lifetime.
                if i + 1 < n && chars[i + 1] == '\\' {
                    let start = i;
                    i += 2; // ' and backslash
                    if i < n {
                        i += 1; // escaped char
                    }
                    // Multi-char escapes (\x41, \u{...}) run to the quote.
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1; // closing quote
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: chars[start..i.min(n)].iter().collect(),
                        line: start_line,
                        in_test: false,
                    });
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    let start = i;
                    i += 3;
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                        in_test: false,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                        in_test: false,
                    });
                }
            }
            c if is_ident_start(c) => {
                // Raw / byte string prefixes first: r"..", r#"..."#,
                // b"..", br#"..."#, and raw identifiers r#ident.
                if let Some((kind, end)) = scan_prefixed_literal(&chars, i, &mut line) {
                    tokens.push(Token {
                        kind,
                        text: chars[i..end].iter().collect(),
                        line: start_line,
                        in_test: false,
                    });
                    i = end;
                    continue;
                }
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                    in_test: false,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let hex = c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'o' | 'b');
                i += 1;
                let mut is_float = false;
                while i < n {
                    let d = chars[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        // An exponent sign rides along only right after
                        // e/E in a decimal literal: 1e-3, 2.5E+7.
                        if !hex
                            && matches!(d, 'e' | 'E')
                            && i + 1 < n
                            && matches!(chars[i + 1], '+' | '-')
                            && i + 2 < n
                            && chars[i + 2].is_ascii_digit()
                        {
                            is_float = true;
                            i += 2;
                        }
                        i += 1;
                    } else if d == '.' {
                        // `0..n` is a range; `1.5` and `1.` are floats;
                        // `1.max(2)` is a method call on an integer.
                        if i + 1 < n && (chars[i + 1] == '.' || is_ident_start(chars[i + 1])) {
                            break;
                        }
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if !hex && (text.contains('e') || text.contains('E')) {
                    is_float = true;
                }
                if text.ends_with("f32") || text.ends_with("f64") {
                    is_float = true;
                }
                tokens.push(Token {
                    kind: TokenKind::Num { is_float },
                    text,
                    line: start_line,
                    in_test: false,
                });
            }
            _ => {
                // Punctuation; fuse the two-character operators the
                // lints inspect.
                let two: Option<&str> = if i + 1 < n {
                    match (c, chars[i + 1]) {
                        ('=', '=') => Some("=="),
                        ('!', '=') => Some("!="),
                        (':', ':') => Some("::"),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(op) = two {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: op.to_string(),
                        line: start_line,
                        in_test: false,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line: start_line,
                        in_test: false,
                    });
                    i += 1;
                }
            }
        }
    }
    Lexed { tokens, comments }
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`, and raw
/// identifiers `r#ident` starting at `chars[i]`. Returns the token kind
/// and the exclusive end index, or `None` when the prefix is an
/// ordinary identifier.
fn scan_prefixed_literal(
    chars: &[char],
    i: usize,
    line: &mut u32,
) -> Option<(TokenKind, usize)> {
    let n = chars.len();
    let c = chars[i];
    if !matches!(c, 'r' | 'b') {
        return None;
    }
    let mut j = i + 1;
    if c == 'b' && j < n && chars[j] == 'r' {
        j += 1;
    }
    let raw = c == 'r' || (c == 'b' && j > i + 1);
    if raw {
        // Count hashes, then require an opening quote (else it's a raw
        // identifier like r#match, or just an ident starting with r).
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            if hashes > 0 && j < n && is_ident_start(chars[j]) {
                // Raw identifier r#ident.
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                return Some((TokenKind::Ident, j));
            }
            return None;
        }
        j += 1; // opening quote
        // Scan to `"` followed by `hashes` hashes; no escapes in raw
        // strings.
        loop {
            if j >= n {
                return Some((TokenKind::Str, n));
            }
            if chars[j] == '\n' {
                *line += 1;
            }
            if chars[j] == '"' && chars[j + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                j += 1 + hashes;
                return Some((TokenKind::Str, j));
            }
            j += 1;
        }
    }
    // Non-raw byte literals: b"..." and b'x'.
    if c == 'b' && j < n && chars[j] == '"' {
        j += 1;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '"' => {
                    j += 1;
                    return Some((TokenKind::Str, j));
                }
                ch => {
                    if ch == '\n' {
                        *line += 1;
                    }
                    j += 1;
                }
            }
        }
        return Some((TokenKind::Str, n));
    }
    if c == 'b' && j < n && chars[j] == '\'' {
        j += 1;
        while j < n && chars[j] != '\'' {
            if chars[j] == '\\' {
                j += 1;
            }
            j += 1;
        }
        return Some((TokenKind::Char, (j + 1).min(n)));
    }
    None
}

/// Marks every token inside a `#[cfg(test)]` item (or one whose `cfg`
/// contains a bare `test` ident, e.g. `cfg(all(test, unix))`) with
/// `in_test = true`.
///
/// The region covers the attributed item: from the attribute to the
/// matching close brace of the item body, or to the terminating `;` for
/// brace-less items (`#[cfg(test)] use …;`).
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(attr_end) = attribute_extent(tokens, i) else {
            i += 1;
            continue;
        };
        if !attribute_is_cfg_test(&tokens[i..attr_end]) {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end;
        while j < tokens.len()
            && tokens[j].kind == TokenKind::Punct
            && tokens[j].text == "#"
        {
            match attribute_extent(tokens, j) {
                Some(end) => j = end,
                None => break,
            }
        }
        // Find the item extent: first `{` at delimiter depth 0 opens the
        // body (match to its close), a `;` at depth 0 ends a brace-less
        // item.
        let mut depth = 0i32;
        let mut end = tokens.len();
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        // Body found: scan to the matching brace.
                        let mut braces = 1i32;
                        let mut m = k + 1;
                        while m < tokens.len() && braces > 0 {
                            if tokens[m].kind == TokenKind::Punct {
                                match tokens[m].text.as_str() {
                                    "{" => braces += 1,
                                    "}" => braces -= 1,
                                    _ => {}
                                }
                            }
                            m += 1;
                        }
                        end = m;
                        break;
                    }
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    ";" if depth == 0 => {
                        end = k + 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for t in &mut tokens[i..end] {
            t.in_test = true;
        }
        i = end;
    }
}

/// Returns the exclusive end of the attribute starting at the `#` at
/// `start` (`#[...]` with balanced brackets), or `None` when `start`
/// does not open an attribute.
fn attribute_extent(tokens: &[Token], start: usize) -> Option<usize> {
    let mut j = start + 1;
    // `#![...]` inner attributes.
    if j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "!" {
        j += 1;
    }
    if !(j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "[") {
        return None;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Whether an attribute token slice (from `#` to `]` inclusive) is a
/// `cfg` whose arguments mention a bare `test` identifier.
fn attribute_is_cfg_test(attr: &[Token]) -> bool {
    let mut idents = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str());
    match idents.next() {
        Some("cfg") => {}
        _ => return false,
    }
    idents.any(|name| name == "test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(idents("a /* outer /* inner */ still comment */ b"), ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let lexed = lex("x // comment .unwrap()\ny");
        assert_eq!(
            lexed.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["x", "y"]
        );
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn strings_with_escapes_do_not_end_early() {
        assert_eq!(idents(r#"a "quote \" unwrap()" b"#), ["a", "b"]);
    }

    #[test]
    fn raw_strings_match_hash_counts() {
        assert_eq!(idents(r###"a r#"inner " quote"# b"###), ["a", "b"]);
        assert_eq!(idents("a r\"plain\" b"), ["a", "b"]);
        // A raw string containing what looks like a terminator for a
        // smaller hash count.
        let src = "a r##\"has \"# inside\"## b";
        assert_eq!(idents(src), ["a", "b"]);
    }

    #[test]
    fn byte_strings_and_raw_identifiers() {
        assert_eq!(idents(r#"a b"bytes" c"#), ["a", "c"]);
        assert_eq!(idents("a br#\"raw bytes\"# c"), ["a", "c"]);
        // r#match is an identifier, not a raw string.
        assert_eq!(idents("let r#match = 1;"), ["let", "r#match"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = lex("let c = 'x'; fn f<'a>(v: &'a str) { let q = '\\''; }");
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["'x'", "'\\''"]);
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn numeric_literals_classify_floats() {
        let floats: Vec<bool> = lex("1 1.5 0..3 2e-3 1f32 0x1E 10u64 1.")
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Num { is_float } => Some(is_float),
                _ => None,
            })
            .collect();
        // 1, 1.5, 0, 3, 2e-3, 1f32, 0x1E, 10u64, 1.
        assert_eq!(floats, [false, true, false, false, true, true, false, false, true]);
    }

    #[test]
    fn fused_operators() {
        let ops: Vec<String> = lex("a == b != c :: d <= e")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, ["==", "!=", "::", "<", "="]);
    }

    #[test]
    fn cfg_test_mod_region_has_exact_boundaries() {
        let src = "fn before() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn inner() { y.unwrap(); }\n\
                   }\n\
                   fn after() { z.unwrap(); }\n";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true, false]);
    }

    #[test]
    fn cfg_test_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { a.unwrap(); }";
        let lexed = lex(src);
        let hash_map = lexed.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert!(hash_map.in_test);
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!unwrap.in_test);
    }

    #[test]
    fn cfg_all_test_counts_as_test_region() {
        let src = "#[cfg(all(test, unix))]\nfn helper() { a.unwrap(); }";
        let unwrap = lex(src).tokens.into_iter().find(|t| t.text == "unwrap").unwrap();
        assert!(unwrap.in_test);
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test-utils\")]\nfn helper() { a.unwrap(); }";
        let unwrap = lex(src).tokens.into_iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!unwrap.in_test);
    }

    #[test]
    fn stacked_attributes_extend_the_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn signature_parens_do_not_open_the_body_early() {
        // The brace search must ignore `{` inside parens/brackets depth.
        let src = "#[cfg(test)]\nfn f(x: [u8; 3]) -> u8 { x[0] }\nfn live() { b.unwrap(); }";
        let lexed = lex(src);
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!unwrap.in_test);
    }
}
