//! A lightweight recursive-descent *item* parser over the lexer's
//! token stream.
//!
//! This is deliberately not a Rust grammar: it recognises exactly the
//! structure the cross-file lints need — `mod` / `impl` / `trait`
//! nesting for qualified names, `use` declarations (including renames
//! and groups) for call resolution, `fn` items with their body extents,
//! and, inside each body, call sites, panicking constructs, and
//! whether a site sits lexically inside a `catch_unwind(...)`
//! argument. Everything else (expressions, types, patterns) is skipped
//! by bracket matching. Like the rest of the crate it is
//! dependency-free; the input is [`crate::lexer::Lexed`].
//!
//! The parser is an over-approximation by design: an `Ident(` shape it
//! cannot classify becomes a call site with an unresolvable path,
//! which the graph layer simply drops. Missing an *edge* would hide a
//! panic from reachability, so ambiguity always errs toward recording.

use crate::lexer::{Lexed, Token, TokenKind};

/// A panicking construct the reachability lint tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(..)`
    Expect,
    /// `panic!(..)`
    PanicMacro,
    /// `unreachable!(..)`
    UnreachableMacro,
    /// `expr[index]` — slice/array indexing, which panics out of
    /// bounds. Reported only under `--panic-indexing` (see
    /// DESIGN.md §7): the heuristic cannot see `get()`-style guards,
    /// so it is advisory.
    Index,
}

impl PanicKind {
    /// Human-readable construct name for messages.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect(..)",
            PanicKind::PanicMacro => "panic!",
            PanicKind::UnreachableMacro => "unreachable!",
            PanicKind::Index => "indexing (`[..]`)",
        }
    }
}

/// One panicking construct found in a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which construct.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
    /// The site is lexically inside a `catch_unwind(...)` argument, so
    /// a panic here is converted to an `Err` by the harness.
    pub protected: bool,
}

/// One call site found in a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written: `chaos::fs::read(..)` →
    /// `["chaos", "fs", "read"]`; a method call `x.frob()` → `["frob"]`.
    pub segments: Vec<String>,
    /// The call is `receiver.method(..)` rather than `path(..)`.
    pub is_method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Lexically inside a `catch_unwind(...)` argument: panics beyond
    /// this edge cannot unwind past the harness.
    pub protected: bool,
}

/// One parsed `fn` item (free function, inherent/trait method, or a
/// `fn` nested in another body). Test code is never recorded.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Fully qualified name: `crate::module::Type::name` (the type
    /// segment only for impl/trait methods).
    pub qname: String,
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` type this is a method of, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panicking constructs in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// The body mentions a chaos-seam identifier (`Seam`, `IoFault`,
    /// `WriteFault`, `seam_fault`, `io_fault`): the function threads
    /// fault injection, which exempts its raw socket calls from
    /// `chaos_seam_coverage` (fs calls are never exempt — they have a
    /// `chaos::fs` wrapper to use).
    pub seam_aware: bool,
}

/// One `use` declaration binding, after group/rename expansion:
/// `use a::{b, c as d};` yields `b → [a,b]` and `d → [a,c]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name this binding introduces into the file's scope.
    pub alias: String,
    /// Full path segments of the target.
    pub segments: Vec<String>,
}

/// Everything the graph layer needs from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The owning crate's *library* name (`ancode` for `crates/core`),
    /// i.e. the first segment of every qname in this file.
    pub crate_name: String,
    /// Functions found, in source order (includes nested ones).
    pub fns: Vec<FnItem>,
    /// `use` bindings visible in this file (module-level scoping is
    /// flattened to the file — imports are file-scoped in practice).
    pub uses: Vec<UseDecl>,
}

/// Identifiers that may directly precede `[` without the bracket being
/// an index expression (array literals / array types after keywords).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "in", "return", "break", "if", "else", "match", "let", "mut", "as", "move", "ref", "box",
    "yield", "await",
];

const SEAM_IDENTS: [&str; 5] = ["Seam", "IoFault", "WriteFault", "seam_fault", "io_fault"];

/// Library name of the crate owning `rel_path`. Directory names match
/// library names throughout the workspace except `crates/core` (which
/// builds the `ancode` library) and `crates/lint` (`repro_lint`);
/// `integration/src` files belong to the `integration` crate.
pub fn crate_name_of(rel_path: &str) -> String {
    let dir = rel_path
        .strip_prefix("crates/")
        .unwrap_or(rel_path)
        .split('/')
        .next()
        .unwrap_or("");
    match dir {
        "core" => "ancode".to_string(),
        "lint" => "repro_lint".to_string(),
        other => other.to_string(),
    }
}

/// Module path derived from a workspace-relative file path:
/// `crates/accel/src/serve/mod.rs` → `["serve"]`,
/// `crates/core/src/an.rs` → `["an"]`, `src/lib.rs`-style roots → `[]`.
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let Some(pos) = rel_path.find("/src/") else {
        return Vec::new();
    };
    let tail = &rel_path[pos + 5..];
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<String> = tail.split('/').map(str::to_string).collect();
    match parts.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts
}

/// Parses one lexed file. `crate_name` seeds every qname.
pub fn parse_file(path: &str, crate_name: &str, lexed: &Lexed) -> ParsedFile {
    let mut out = ParsedFile {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        ..ParsedFile::default()
    };
    let mut scope = module_path_of(path);
    let mut p = Parser {
        tokens: &lexed.tokens,
        out: &mut out,
    };
    p.items(0, lexed.tokens.len(), &mut scope, None);
    out
}

struct Parser<'a> {
    tokens: &'a [Token],
    out: &'a mut ParsedFile,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Index just past the bracket that matches the opener at `open`
    /// (`(`, `[` or `{`; all three kinds share one depth counter, which
    /// is sound because the lexer never emits unbalanced brackets from
    /// real code — strings and comments are already stripped).
    fn skip_balanced(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parses items in `[i, end)` under the module `scope` (and
    /// optional `impl`/`trait` type), until the stream runs out.
    fn items(&mut self, mut i: usize, end: usize, scope: &mut Vec<String>, self_ty: Option<&str>) {
        while i < end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" || self.text(i + 1) == "!" => {
                    // Attribute: skip `#[...]` / `#![...]`.
                    let open = if self.text(i + 1) == "[" { i + 1 } else { i + 2 };
                    i = self.skip_balanced(open, end);
                }
                "mod" if self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    if self.text(i + 2) == "{" {
                        let body_end = self.skip_balanced(i + 2, end);
                        scope.push(name);
                        self.items(i + 3, body_end - 1, scope, self_ty);
                        scope.pop();
                        i = body_end;
                    } else {
                        i += 2; // `mod x;` — the file walker visits x.rs itself.
                    }
                }
                "impl" | "trait" => {
                    i = self.impl_or_trait(i, end, scope);
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_item(i, end, scope, self_ty);
                }
                "use" => {
                    i = self.use_decl(i + 1, end);
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }`: skip the whole body —
                    // macro arms are not expression code.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    i = self.skip_balanced(j, end);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses an `impl`/`trait` header starting at `kw`, recursing into
    /// the body with the subject type pushed. Returns the index past
    /// the item.
    fn impl_or_trait(&mut self, kw: usize, end: usize, scope: &mut Vec<String>) -> usize {
        // Collect candidate type names between the keyword and the
        // body; `impl Trait for Type` makes the *last* path-head before
        // `{` the subject, which also holds for plain `impl Type`.
        let mut i = kw + 1;
        let mut subject: Option<String> = None;
        let mut angle = 0i32;
        while i < end {
            match self.text(i) {
                "{" if angle == 0 => break,
                ";" if angle == 0 => return i + 1, // `trait X: Y;`-ish degenerate
                "<" => angle += 1,
                ">" if self.text(i.wrapping_sub(1)) != "-" => angle = (angle - 1).max(0),
                "where" if angle == 0 => {
                    // A where-clause can contain `Fn(..)` bounds; scan
                    // to the body brace with bracket skipping.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" {
                        if matches!(self.text(j), "(" | "[") {
                            j = self.skip_balanced(j, end);
                        } else {
                            j += 1;
                        }
                    }
                    i = j;
                    continue;
                }
                _ => {
                    if angle == 0 && self.is_ident(i) && self.text(i) != "for" && self.text(i) != "dyn"
                    {
                        // Remember the head of each type path; the last
                        // one wins (`impl Display for AccelError`).
                        if self.text(i.wrapping_sub(1)) != "::" {
                            subject = Some(self.text(i).to_string());
                        } else if let Some(s) = &mut subject {
                            // `impl fmt::Display for x::Y` — keep the
                            // final segment as the subject.
                            *s = self.text(i).to_string();
                        }
                    }
                }
            }
            i += 1;
        }
        if i >= end || self.text(i) != "{" {
            return i;
        }
        let body_end = self.skip_balanced(i, end);
        let ty = subject.unwrap_or_default();
        self.items(i + 1, body_end - 1, scope, Some(&ty));
        body_end
    }

    /// Parses `fn name <generics>? (args) -> ret where..? { body }`
    /// starting at the `fn` keyword. Returns the index past the item.
    fn fn_item(
        &mut self,
        kw: usize,
        end: usize,
        scope: &mut Vec<String>,
        self_ty: Option<&str>,
    ) -> usize {
        let name_tok = &self.tokens[kw + 1];
        // Whole-item test exemption: a fn whose keyword is inside a
        // `#[cfg(test)]` region is invisible to the cross-file lints.
        let in_test = self.tokens[kw].in_test;
        // Find the body `{` (or `;` for bodiless trait methods),
        // tracking parens and generics. `->` never counts as an angle
        // close because `>` preceded by `-` is skipped.
        let mut i = kw + 2;
        let mut angle = 0i32;
        loop {
            if i >= end {
                return end;
            }
            match self.text(i) {
                "(" | "[" => {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                "<" => angle += 1,
                ">" if self.text(i - 1) != "-" => angle = (angle - 1).max(0),
                "{" if angle == 0 => break,
                ";" if angle == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        let body_end = self.skip_balanced(i, end);
        if !in_test {
            let mut qname = String::from(&self.out.crate_name);
            for seg in scope.iter() {
                qname.push_str("::");
                qname.push_str(seg);
            }
            if let Some(ty) = self_ty {
                if !ty.is_empty() {
                    qname.push_str("::");
                    qname.push_str(ty);
                }
            }
            qname.push_str("::");
            qname.push_str(&name_tok.text);
            // `accel::evaluate` for a root-module fn renders without a
            // double separator because scope/self_ty are empty.
            let item = FnItem {
                qname,
                name: name_tok.text.clone(),
                self_ty: self_ty.filter(|t| !t.is_empty()).map(str::to_string),
                line: name_tok.line,
                calls: Vec::new(),
                panics: Vec::new(),
                seam_aware: false,
            };
            let idx = self.out.fns.len();
            self.out.fns.push(item);
            let mut acc = FnAcc::default();
            self.body(i + 1, body_end - 1, scope, &mut acc);
            let f = &mut self.out.fns[idx];
            f.calls = acc.calls;
            f.panics = acc.panics;
            f.seam_aware = acc.seam_aware;
        }
        body_end
    }

    /// Walks one function body in `[i, end)`, reporting calls, panic
    /// constructs, and seam identifiers. Nested `fn` items are parsed
    /// as their own [`FnItem`]s.
    fn body(&mut self, mut i: usize, end: usize, scope: &mut Vec<String>, acc: &mut FnAcc) {
        // Extents (exclusive end index) of `catch_unwind(...)` argument
        // lists currently containing `i`.
        let mut protected: Vec<usize> = Vec::new();
        while i < end {
            while protected.last().is_some_and(|&e| i >= e) {
                protected.pop();
            }
            let under_guard = !protected.is_empty();
            let t = &self.tokens[i];
            match t.text.as_str() {
                "#" if self.text(i + 1) == "[" => {
                    i = self.skip_balanced(i + 1, end);
                    continue;
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_item(i, end, scope, None);
                    continue;
                }
                "[" => {
                    // Index expression iff the previous token can end an
                    // expression. `#[attr]` is consumed above; array
                    // literals follow operators or keywords and are
                    // skipped by the keyword/punct test.
                    let prev = i.checked_sub(1).map(|p| &self.tokens[p]);
                    let indexes = prev.is_some_and(|p| match p.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokenKind::Punct => p.text == ")" || p.text == "]",
                        _ => false,
                    });
                    if indexes {
                        acc.panics.push(PanicSite {
                            kind: PanicKind::Index,
                            line: t.line,
                            protected: under_guard,
                        });
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if t.kind == TokenKind::Ident {
                if SEAM_IDENTS.contains(&t.text.as_str()) {
                    acc.seam_aware = true;
                }
                let prev_is_dot = i > 0 && self.text(i - 1) == ".";
                let next = self.text(i + 1);
                match t.text.as_str() {
                    "unwrap" if prev_is_dot && next == "(" => {
                        acc.panics.push(PanicSite {
                            kind: PanicKind::Unwrap,
                            line: t.line,
                            protected: under_guard,
                        });
                        i += 2;
                        continue;
                    }
                    "expect" if prev_is_dot && next == "(" => {
                        acc.panics.push(PanicSite {
                            kind: PanicKind::Expect,
                            line: t.line,
                            protected: under_guard,
                        });
                        i += 2;
                        continue;
                    }
                    "panic" | "unreachable" if !prev_is_dot && next == "!" => {
                        acc.panics.push(PanicSite {
                            kind: if t.text == "panic" {
                                PanicKind::PanicMacro
                            } else {
                                PanicKind::UnreachableMacro
                            },
                            line: t.line,
                            protected: under_guard,
                        });
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
                // Path-or-method call: ident (:: ident)* (::<..>)? `(`.
                // Only when this ident *starts* the path (previous
                // token is not `::`).
                if i == 0 || self.text(i - 1) != "::" {
                    let mut segs = vec![t.text.clone()];
                    let mut j = i + 1;
                    while self.text(j) == "::" && self.is_ident(j + 1) {
                        segs.push(self.text(j + 1).to_string());
                        j += 2;
                    }
                    if self.text(j) == "::" && self.text(j + 1) == "<" {
                        // Turbofish: skip the generic args.
                        let mut depth = 0i32;
                        let mut k = j + 1;
                        while k < end {
                            match self.text(k) {
                                "<" => depth += 1,
                                ">" if self.text(k - 1) != "-" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        j = k + 1;
                    }
                    if self.text(j) == "(" {
                        let is_method = i > 0 && self.text(i - 1) == "." && segs.len() == 1;
                        acc.calls.push(CallSite {
                            segments: segs.clone(),
                            is_method,
                            line: t.line,
                            protected: under_guard,
                        });
                        if segs.last().map(String::as_str) == Some("catch_unwind") {
                            let close = self.skip_balanced(j, end);
                            protected.push(close);
                        }
                        // Continue *inside* the argument list so nested
                        // calls are seen.
                        i = j + 1;
                        continue;
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Parses a `use` declaration starting just past the keyword,
    /// expanding groups and renames into flat bindings. Returns the
    /// index past the terminating `;`.
    fn use_decl(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        // `pub use` arrives here with `use` consumed; leading `::` or
        // `pub(crate)` qualifiers are tolerated by the segment loop.
        let mut prefix: Vec<String> = Vec::new();
        loop {
            if i >= end {
                return end;
            }
            match self.text(i) {
                ";" => return i + 1,
                "{" => {
                    let close = self.skip_balanced(i, end);
                    self.use_group(i + 1, close - 1, &prefix);
                    // After the group only `;` can follow.
                    return close + 1;
                }
                "*" => {
                    // Glob import: nothing to bind — resolution falls
                    // back to name matching.
                    i += 1;
                }
                "as" if self.is_ident(i + 1) => {
                    self.out.uses.push(UseDecl {
                        alias: self.text(i + 1).to_string(),
                        segments: prefix.clone(),
                    });
                    return self.advance_to_semi(i + 2, end);
                }
                "::" => i += 1,
                _ if self.is_ident(i) => {
                    prefix.push(self.text(i).to_string());
                    if self.text(i + 1) == ";" {
                        self.out.uses.push(UseDecl {
                            alias: prefix.last().cloned().unwrap_or_default(),
                            segments: prefix.clone(),
                        });
                        return i + 2;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Expands one `{...}` use-group body (`[i, end)`) under `prefix`.
    fn use_group(&mut self, mut i: usize, end: usize, prefix: &[String]) {
        let mut path: Vec<String> = prefix.to_vec();
        let base_len = prefix.len();
        while i < end {
            match self.text(i) {
                "," => {
                    path.truncate(base_len);
                    i += 1;
                }
                "::" => i += 1,
                "{" => {
                    let close = self.skip_balanced(i, end.max(i + 1));
                    self.use_group(i + 1, close - 1, &path);
                    path.truncate(base_len);
                    i = close;
                }
                "as" if self.is_ident(i + 1) => {
                    self.out.uses.push(UseDecl {
                        alias: self.text(i + 1).to_string(),
                        segments: path.clone(),
                    });
                    path.truncate(base_len);
                    i += 2;
                }
                "*" => i += 1,
                _ if self.is_ident(i) => {
                    if self.text(i) == "self" {
                        // `use a::b::{self, c}` binds `b`.
                        if let Some(last) = path.last().cloned() {
                            self.out.uses.push(UseDecl {
                                alias: last,
                                segments: path.clone(),
                            });
                        }
                        i += 1;
                        continue;
                    }
                    path.push(self.text(i).to_string());
                    // A leaf iff followed by `,`, `}` or end.
                    let nxt = self.text(i + 1);
                    if nxt == "," || nxt.is_empty() || i + 1 >= end {
                        self.out.uses.push(UseDecl {
                            alias: path.last().cloned().unwrap_or_default(),
                            segments: path.clone(),
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        // Trailing leaf without a comma (`use a::{b::c}`).
        if path.len() > base_len {
            let already = self
                .out
                .uses
                .last()
                .is_some_and(|u| u.segments == path);
            if !already {
                self.out.uses.push(UseDecl {
                    alias: path.last().cloned().unwrap_or_default(),
                    segments: path,
                });
            }
        }
    }

    fn advance_to_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.text(i) != ";" {
            i += 1;
        }
        (i + 1).min(end)
    }
}

/// Accumulates one function body's findings while the parser holds
/// the mutable borrow needed for nested `fn` items.
#[derive(Default)]
struct FnAcc {
    calls: Vec<CallSite>,
    panics: Vec<PanicSite>,
    seam_aware: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/accel/src/sim/mod.rs", "accel", &lex(src))
    }

    #[test]
    fn crate_names_follow_library_names() {
        assert_eq!(crate_name_of("crates/core/src/an.rs"), "ancode");
        assert_eq!(crate_name_of("crates/accel/src/serve/mod.rs"), "accel");
        assert_eq!(crate_name_of("crates/lint/src/lib.rs"), "repro_lint");
        assert_eq!(crate_name_of("integration/src/lib.rs"), "integration");
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(module_path_of("crates/accel/src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_path_of("crates/cli/src/main.rs"), Vec::<String>::new());
        assert_eq!(module_path_of("crates/accel/src/serve/mod.rs"), ["serve"]);
        assert_eq!(module_path_of("crates/accel/src/serve/worker.rs"), ["serve", "worker"]);
        assert_eq!(module_path_of("crates/core/src/an.rs"), ["an"]);
    }

    #[test]
    fn free_fn_and_nested_impls_get_qualified_names() {
        let f = parse(
            "pub fn evaluate() {}\n\
             mod inner {\n\
               pub struct Pool;\n\
               impl Pool {\n\
                 pub fn acquire(&self) {}\n\
               }\n\
               impl std::fmt::Display for Pool {\n\
                 fn fmt(&self) {}\n\
               }\n\
             }",
        );
        let names: Vec<&str> = f.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "accel::sim::evaluate",
                "accel::sim::inner::Pool::acquire",
                "accel::sim::inner::Pool::fmt"
            ]
        );
        assert_eq!(f.fns[1].self_ty.as_deref(), Some("Pool"));
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        let f = parse(
            "fn sel<F: FnMut(u64) -> Result<u8, E>>(x: F) -> Option<u8> where F: Send {\n\
               helper();\n\
             }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].calls.len(), 1);
        assert_eq!(f.fns[0].calls[0].segments, ["helper"]);
    }

    #[test]
    fn use_renames_and_groups_expand() {
        let f = parse(
            "use chaos::schedule::ChaosSchedule as Sched;\n\
             use obs::{Event, events::emit};\n\
             use std::io::Write;\n",
        );
        assert!(f
            .uses
            .contains(&UseDecl { alias: "Sched".into(), segments: vec!["chaos".into(), "schedule".into(), "ChaosSchedule".into()] }));
        assert!(f
            .uses
            .contains(&UseDecl { alias: "Event".into(), segments: vec!["obs".into(), "Event".into()] }));
        assert!(f
            .uses
            .contains(&UseDecl { alias: "emit".into(), segments: vec!["obs".into(), "events".into(), "emit".into()] }));
        assert!(f
            .uses
            .contains(&UseDecl { alias: "Write".into(), segments: vec!["std".into(), "io".into(), "Write".into()] }));
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let f = parse(
            "fn real() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
               fn fake() { y.unwrap(); helper(); }\n\
             }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
        assert_eq!(f.fns[0].panics.len(), 1);
    }

    #[test]
    fn panic_constructs_and_catch_unwind_protection() {
        let f = parse(
            "fn run() {\n\
               let r = catch_unwind(AssertUnwindSafe(|| {\n\
                 shard().unwrap();\n\
                 panic!(\"chaos\");\n\
               }));\n\
               r.expect(\"outer\");\n\
               unreachable!();\n\
             }",
        );
        let p = &f.fns[0].panics;
        assert_eq!(p.len(), 4);
        assert!(p[0].protected && p[0].kind == PanicKind::Unwrap);
        assert!(p[1].protected && p[1].kind == PanicKind::PanicMacro);
        assert!(!p[2].protected && p[2].kind == PanicKind::Expect);
        assert!(!p[3].protected && p[3].kind == PanicKind::UnreachableMacro);
        // The call inside the guard is a protected edge; the
        // catch_unwind call itself is not.
        let shard = f.fns[0].calls.iter().find(|c| c.segments == ["shard"]).unwrap();
        assert!(shard.protected);
    }

    #[test]
    fn call_paths_methods_and_turbofish() {
        let f = parse(
            "fn go(v: Vec<u8>) {\n\
               chaos::fs::write_atomic(p, b, None);\n\
               pool.acquire();\n\
               let x = v.iter().collect::<Vec<_>>();\n\
               Campaign::new(cfg);\n\
             }",
        );
        let calls = &f.fns[0].calls;
        assert!(calls.iter().any(|c| c.segments == ["chaos", "fs", "write_atomic"] && !c.is_method));
        assert!(calls.iter().any(|c| c.segments == ["acquire"] && c.is_method));
        assert!(calls.iter().any(|c| c.segments == ["collect"] && c.is_method));
        assert!(calls.iter().any(|c| c.segments == ["Campaign", "new"] && !c.is_method));
    }

    #[test]
    fn indexing_heuristic_flags_subscripts_not_literals_or_attrs() {
        let f = parse(
            "fn go(xs: &[u8], i: usize) -> u8 {\n\
               let a = [1u8, 2];\n\
               let _ = &a;\n\
               #[allow(dead_code)]\n\
               let y = xs[i];\n\
               let z = foo()[0];\n\
               y + z\n\
             }",
        );
        let idx: Vec<u32> = f.fns[0]
            .panics
            .iter()
            .filter(|p| p.kind == PanicKind::Index)
            .map(|p| p.line)
            .collect();
        assert_eq!(idx, [5, 6]);
    }

    #[test]
    fn seam_awareness_is_recorded() {
        let f = parse("fn a() { let f = self.io_fault(Seam::FinalWrite); }\nfn b() {}");
        assert!(f.fns[0].seam_aware);
        assert!(!f.fns[1].seam_aware);
    }
}
