//! The cross-file lints: panic reachability, chaos-seam coverage, and
//! obs schema drift.
//!
//! These run once over the whole workspace, after every file has been
//! lexed ([`crate::lexer`]) and parsed ([`crate::parser`]):
//!
//! - **`panic_reachability`** walks the workspace call graph
//!   ([`crate::graph`]) from the crash-safe entry points
//!   ([`ENTRY_POINTS`]) and flags every panicking construct in a
//!   reachable function that has no `catch_unwind` on the path.
//!   Unlike the old per-file `panic_in_harness` scope list, a helper
//!   three crates away from `Campaign::run` is guarded exactly when
//!   the harness can actually reach it.
//! - **`chaos_seam_coverage`** checks that the chaos-tested
//!   persistence and service files route raw `std::fs` / `std::net`
//!   calls through a fault-injection seam: file I/O must use
//!   `chaos::fs` (whose `write_atomic`/`read` accept an injected
//!   fault), and socket calls must sit in a function that threads a
//!   `Seam` (see [`crate::parser::FnItem::seam_aware`]).
//! - **`schema_drift`** extracts the event schema from
//!   `crates/obs/src/schema.rs` and cross-checks every
//!   `Event::new("type")` builder chain in the workspace against it:
//!   field names, types, and emission order must match the spec
//!   exactly, and the type tag must exist. An emit/schema mismatch
//!   fails `repro-lint check` at lint time instead of a round-trip
//!   test after the fact.
//!
//! Suppression works like the per-file lints: the violation's owning
//! file honours `// lint: allow(<lint>, <reason>)` on the flagged line
//! or the line above (applied by the caller, [`crate::collect_violations`],
//! which owns the per-file lexed streams).

use crate::graph::Graph;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::lints::{LintId, Violation};
use crate::parser::{PanicKind, ParsedFile};

/// The crash-safe entry points: the public surfaces whose contract is
/// "typed errors out, never a panic". Everything transitively callable
/// from here without a `catch_unwind` cut is in `panic_reachability`
/// scope.
pub const ENTRY_POINTS: [&str; 4] = [
    "accel::sim::evaluate",
    "accel::campaign::Campaign::run",
    "accel::serve::Service::start",
    "accel::grid::Grid::run",
];

/// The schema definition file `schema_drift` reads. When absent (a
/// fixture workspace without the obs crate), the lint is a no-op.
pub const SCHEMA_FILE: &str = "crates/obs/src/schema.rs";

/// Options threaded from the CLI into the cross-file passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossOptions {
    /// Also report `expr[index]` sites (`--panic-indexing`). Advisory:
    /// the heuristic cannot see `get()`-style guards or length
    /// invariants, so indexing is opt-in rather than baselined.
    pub panic_indexing: bool,
}

/// Runs the three cross-file lints. `files` and `parsed` are parallel
/// (same index = same file); violations come back unsorted and
/// unsuppressed — the caller applies allow comments and ordering.
pub fn check_workspace(
    files: &[(String, Lexed)],
    parsed: &[ParsedFile],
    opts: CrossOptions,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let graph = Graph::build(parsed);
    panic_reachability(parsed, &graph, opts.panic_indexing, &mut out);
    chaos_seam_coverage(parsed, &mut out);
    schema_drift(files, &mut out);
    out
}

/// L1: panicking constructs reachable from a crash-safe entry point.
fn panic_reachability(
    parsed: &[ParsedFile],
    graph: &Graph,
    indexing: bool,
    out: &mut Vec<Violation>,
) {
    let entries: Vec<&str> = ENTRY_POINTS.to_vec();
    let origins = graph.reachable(parsed, &entries);
    for (id, origin) in origins.iter().enumerate() {
        let Some(origin) = origin else { continue };
        let gf = &graph.fns[id];
        for p in &gf.item.panics {
            if p.protected || (p.kind == PanicKind::Index && !indexing) {
                continue;
            }
            out.push(Violation {
                lint: LintId::PanicReachability,
                file: gf.file.clone(),
                line: p.line,
                message: format!(
                    "{} in `{}`, reachable from crash-safe entry `{}` (via `{}`) with no \
                     catch_unwind on the path; return a typed error instead",
                    p.kind.label(),
                    gf.item.qname,
                    origin.entry,
                    origin.via
                ),
            });
        }
    }
}

/// Files guarded by `chaos_seam_coverage`: everywhere the chaos soaks
/// inject I/O faults — the campaign's checkpoint/final-write paths,
/// the serve daemon, the grid driver's lease/manifest/merge I/O, and
/// the obs event log (whose torn-write seam the durability tests
/// drive).
fn in_seam_scope(path: &str) -> bool {
    path == "crates/accel/src/campaign.rs"
        || path.starts_with("crates/accel/src/serve/")
        || path.starts_with("crates/accel/src/grid/")
        || path == "crates/obs/src/events.rs"
}

/// `std::fs` functions that touch durable state. Metadata probes
/// (`metadata`, `exists`) are deliberately absent: they cannot tear an
/// artifact, and faulting them teaches the soaks nothing.
const DURABLE_FS_FNS: [&str; 9] = [
    "write",
    "read",
    "read_to_string",
    "rename",
    "remove_file",
    "remove_dir_all",
    "copy",
    "create_dir",
    "create_dir_all",
];

/// Classifies a (alias-expanded) call path as a raw `std` I/O
/// construct. Returns the display name and whether it is a socket
/// operation (sockets are exempt inside seam-aware functions; file
/// operations never are, because `chaos::fs` exists to be used).
fn raw_io_construct(segments: &[String]) -> Option<(String, bool)> {
    let segs: Vec<&str> = segments.iter().map(String::as_str).collect();
    let segs: &[&str] = if segs.first() == Some(&"std") {
        &segs[1..]
    } else {
        &segs
    };
    match segs {
        [fs, m] if *fs == "fs" && DURABLE_FS_FNS.contains(m) => Some((format!("fs::{m}"), false)),
        ["File", m] | ["fs", "File", m] if matches!(*m, "create" | "create_new" | "open") => {
            Some((format!("File::{m}"), false))
        }
        ["OpenOptions", "new"] | ["fs", "OpenOptions", "new"] => {
            Some(("OpenOptions::new".to_string(), false))
        }
        ["TcpListener", "bind"] | ["net", "TcpListener", "bind"] => {
            Some(("TcpListener::bind".to_string(), true))
        }
        ["TcpStream", "connect"] | ["net", "TcpStream", "connect"] => {
            Some(("TcpStream::connect".to_string(), true))
        }
        _ => None,
    }
}

/// L5: raw `std::fs` / `std::net` call sites in the chaos-tested files.
fn chaos_seam_coverage(parsed: &[ParsedFile], out: &mut Vec<Violation>) {
    for pf in parsed {
        if !in_seam_scope(&pf.path) {
            continue;
        }
        for f in &pf.fns {
            for c in &f.calls {
                if c.is_method {
                    continue;
                }
                // Expand a leading use-alias so `fs::read` under
                // `use chaos::fs;` is seen as `chaos::fs::read` (and
                // under `use std::fs;` as the raw call it is).
                let mut segs = c.segments.clone();
                if let Some(u) = pf.uses.iter().find(|u| u.alias == segs[0]) {
                    let mut full = u.segments.clone();
                    full.extend(segs.iter().skip(1).cloned());
                    segs = full;
                }
                if segs.first().map(String::as_str) == Some("chaos") {
                    continue;
                }
                let Some((construct, is_socket)) = raw_io_construct(&segs) else {
                    continue;
                };
                if is_socket && f.seam_aware {
                    continue;
                }
                let fix = if is_socket {
                    "thread a chaos Seam through this function (accept/read/write faults \
                     must be injectable)"
                } else {
                    "route it through chaos::fs (write_atomic / read) so the chaos soaks \
                     can inject faults here"
                };
                out.push(Violation {
                    lint: LintId::ChaosSeamCoverage,
                    file: pf.path.clone(),
                    line: c.line,
                    message: format!(
                        "`{construct}` in `{}` bypasses the chaos fault seam; {fix}",
                        f.qname
                    ),
                });
            }
        }
    }
}

/// One event type's spec, extracted from the schema file: the type tag
/// and its `(name, kind)` fields in canonical order. Kinds use the
/// builder-method spelling (`u64`/`f64`/`str`/`bool`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventShape {
    /// Value of the `"type"` tag.
    pub event_type: String,
    /// `(field name, builder method)` pairs in emission order.
    pub fields: Vec<(String, String)>,
}

/// Maps a `FieldKind` spelling from the schema file to the builder
/// method an emit site must use.
fn kind_to_method(kind_ident: &str) -> Option<&'static str> {
    match kind_ident {
        "U64" => Some("u64"),
        "F64" => Some("f64"),
        "STR" | "Str" => Some("str"),
        "BOOL" | "Bool" => Some("bool"),
        _ => None,
    }
}

/// Extracts every [`EventShape`] from the lexed schema file by walking
/// the `EventSpec { event_type: "..", fields: &[field("..", KIND),..] }`
/// literals. Token-level on purpose: the lint crate cannot depend on
/// the obs crate (it lints it), and the literal table in `schema.rs`
/// is the schema's single source of truth.
pub fn extract_schema(lexed: &Lexed) -> Vec<EventShape> {
    let t = &lexed.tokens;
    let text = |i: usize| t.get(i).map_or("", |tok: &Token| tok.text.as_str());
    let is_str = |i: usize| t.get(i).is_some_and(|tok| tok.kind == TokenKind::Str);
    let mut events: Vec<EventShape> = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].in_test {
            i += 1;
            continue;
        }
        match text(i) {
            "event_type" if text(i + 1) == ":" && is_str(i + 2) => {
                events.push(EventShape {
                    event_type: unquote(text(i + 2)),
                    fields: Vec::new(),
                });
                i += 3;
            }
            "field" if text(i + 1) == "(" && is_str(i + 2) && text(i + 3) == "," => {
                // `field("name", KIND)` — the kind is the last ident
                // before the closing paren (`U64` or `FieldKind::U64`).
                let name = unquote(text(i + 2));
                let mut j = i + 4;
                let mut kind = String::new();
                while j < t.len() && text(j) != ")" {
                    if t[j].kind == TokenKind::Ident {
                        kind = t[j].text.clone();
                    }
                    j += 1;
                }
                if let (Some(method), Some(ev)) =
                    (kind_to_method(&kind), events.last_mut())
                {
                    ev.fields.push((name, method.to_string()));
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    events
}

/// Strips the delimiting quotes from a string-literal token's text.
fn unquote(text: &str) -> String {
    text.trim_start_matches('"')
        .trim_end_matches('"')
        .to_string()
}

/// The builder methods that append a typed field to an event.
const FIELD_METHODS: [&str; 4] = ["u64", "f64", "str", "bool"];

/// L6: `Event::new("type")` builder chains that disagree with the
/// schema file. Emit sites with a non-literal type tag or field key
/// are skipped (unverifiable at lint time); the round-trip tests in
/// the obs crate backstop those, and today every producer is literal.
fn schema_drift(files: &[(String, Lexed)], out: &mut Vec<Violation>) {
    let Some(schema) = files
        .iter()
        .find(|(path, _)| path == SCHEMA_FILE)
        .map(|(_, lexed)| extract_schema(lexed))
    else {
        return;
    };
    for (path, lexed) in files {
        if path == SCHEMA_FILE {
            continue;
        }
        scan_emit_sites(path, lexed, &schema, out);
    }
}

fn scan_emit_sites(
    path: &str,
    lexed: &Lexed,
    schema: &[EventShape],
    out: &mut Vec<Violation>,
) {
    let t = &lexed.tokens;
    let text = |i: usize| t.get(i).map_or("", |tok: &Token| tok.text.as_str());
    let is_str = |i: usize| t.get(i).is_some_and(|tok| tok.kind == TokenKind::Str);
    for i in 0..t.len() {
        if t[i].in_test || t[i].kind != TokenKind::Ident || t[i].text != "Event" {
            continue;
        }
        if !(text(i + 1) == "::" && text(i + 2) == "new" && text(i + 3) == "(") {
            continue;
        }
        if !is_str(i + 4) || text(i + 5) != ")" {
            continue; // dynamic type tag: unverifiable here.
        }
        let event_type = unquote(text(i + 4));
        let line = t[i].line;
        // Walk the `.method("key", value)` chain.
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut verifiable = true;
        let mut j = i + 6;
        while text(j) == "."
            && t.get(j + 1).is_some_and(|tok| tok.kind == TokenKind::Ident)
            && text(j + 2) == "("
        {
            let method = text(j + 1).to_string();
            if !FIELD_METHODS.contains(&method.as_str()) {
                break;
            }
            if is_str(j + 3) {
                fields.push((unquote(text(j + 3)), method));
            } else {
                verifiable = false; // computed key: give up on this site.
                break;
            }
            j = skip_balanced(t, j + 2);
        }
        if !verifiable {
            continue;
        }
        let Some(spec) = schema.iter().find(|e| e.event_type == event_type) else {
            out.push(Violation {
                lint: LintId::SchemaDrift,
                file: path.to_string(),
                line,
                message: format!(
                    "event type `{event_type}` is not in obs::schema::EVENTS; add it to the \
                     schema (and DESIGN.md §8) or fix the tag"
                ),
            });
            continue;
        };
        if let Some(msg) = diff_fields(&event_type, &fields, &spec.fields) {
            out.push(Violation {
                lint: LintId::SchemaDrift,
                file: path.to_string(),
                line,
                message: msg,
            });
        }
    }
}

/// First discrepancy between an emit site's fields and the schema's,
/// as a human-readable message (`None` = exact match).
fn diff_fields(
    event_type: &str,
    emitted: &[(String, String)],
    spec: &[(String, String)],
) -> Option<String> {
    for (idx, (e, s)) in emitted.iter().zip(spec.iter()).enumerate() {
        if e != s {
            return Some(format!(
                "`{event_type}` field {} is `.{}(\"{}\", ..)` but obs::schema::EVENTS \
                 requires `.{}(\"{}\", ..)` at that position",
                idx + 1,
                e.1,
                e.0,
                s.1,
                s.0
            ));
        }
    }
    if emitted.len() < spec.len() {
        let missing: Vec<&str> = spec[emitted.len()..]
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        return Some(format!(
            "`{event_type}` emit is missing required field(s) {}; every producer emits \
             every field of its type",
            missing.join(", ")
        ));
    }
    if emitted.len() > spec.len() {
        let extra: Vec<&str> = emitted[spec.len()..]
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        return Some(format!(
            "`{event_type}` emit carries field(s) {} that obs::schema::EVENTS does not \
             declare; append them to the schema or drop them",
            extra.join(", ")
        ));
    }
    None
}

/// Index just past the bracket matching the opener at `open`.
fn skip_balanced(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(sources: &[(&str, &str)]) -> (Vec<(String, Lexed)>, Vec<ParsedFile>) {
        let mut files = Vec::new();
        let mut parsed = Vec::new();
        for (path, src) in sources {
            let lexed = lex(src);
            parsed.push(parse_file(path, &crate::parser::crate_name_of(path), &lexed));
            files.push((path.to_string(), lexed));
        }
        (files, parsed)
    }

    fn check(sources: &[(&str, &str)], opts: CrossOptions) -> Vec<Violation> {
        let (files, parsed) = ws(sources);
        check_workspace(&files, &parsed, opts)
    }

    #[test]
    fn panic_reachability_follows_calls_and_respects_catch_unwind() {
        let hits = check(
            &[
                (
                    "crates/accel/src/sim/mod.rs",
                    "pub fn evaluate() {\n\
                       let r = catch_unwind(|| shard());\n\
                       plan();\n\
                     }\n\
                     fn plan() { ancode::an::encode(3); }\n\
                     fn shard() { a.unwrap(); }",
                ),
                (
                    "crates/core/src/an.rs",
                    "pub fn encode(x: u64) -> u64 { x.checked_add(1).expect(\"no\") }\n\
                     pub fn orphan() { b.unwrap(); }",
                ),
            ],
            CrossOptions::default(),
        );
        let hits: Vec<_> = hits
            .iter()
            .filter(|v| v.lint == LintId::PanicReachability)
            .collect();
        // encode's expect is reachable via evaluate → plan; shard is
        // only behind catch_unwind and orphan is never called.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/core/src/an.rs");
        assert_eq!(hits[0].line, 1);
        assert!(hits[0].message.contains("accel::sim::evaluate"));
        assert!(hits[0].message.contains("via `accel::sim::plan`"));
    }

    #[test]
    fn panic_reachability_indexing_is_opt_in() {
        let src = &[(
            "crates/accel/src/sim/mod.rs",
            "pub fn evaluate(xs: &[u8], i: usize) -> u8 { xs[i] }",
        )];
        assert!(check(src, CrossOptions::default()).is_empty());
        let hits = check(src, CrossOptions { panic_indexing: true });
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("indexing"));
    }

    #[test]
    fn seam_coverage_flags_raw_io_but_not_chaos_fs() {
        let hits = check(
            &[(
                "crates/accel/src/campaign.rs",
                "use std::fs;\n\
                 fn save(p: &Path) {\n\
                   chaos::fs::write_atomic(p, b, None);\n\
                   let _ = fs::read(p);\n\
                   std::fs::rename(a, b);\n\
                   let f = File::create(p);\n\
                 }",
            )],
            CrossOptions::default(),
        );
        let got: Vec<(u32, bool)> = hits
            .iter()
            .filter(|v| v.lint == LintId::ChaosSeamCoverage)
            .map(|v| (v.line, v.message.contains("chaos::fs")))
            .collect();
        assert_eq!(got, [(4, true), (5, true), (6, true)], "{hits:?}");
    }

    #[test]
    fn seam_coverage_alias_of_chaos_fs_is_clean() {
        let hits = check(
            &[(
                "crates/accel/src/campaign.rs",
                "use chaos::fs;\nfn save(p: &Path) { fs::read(p, None); }",
            )],
            CrossOptions::default(),
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn seam_coverage_sockets_exempt_only_in_seam_aware_fns() {
        let hits = check(
            &[(
                "crates/accel/src/serve/mod.rs",
                "fn aware(&self) {\n\
                   let f = self.io_fault(Seam::SocketAccept);\n\
                   let l = TcpListener::bind(addr);\n\
                 }\n\
                 fn naive() { let s = TcpStream::connect(addr); }",
            )],
            CrossOptions::default(),
        );
        let got: Vec<u32> = hits.iter().map(|v| v.line).collect();
        assert_eq!(got, [5], "{hits:?}");
        // A raw *file* call is flagged even in a seam-aware fn.
        let hits = check(
            &[(
                "crates/accel/src/serve/mod.rs",
                "fn aware(&self) {\n\
                   let f = self.io_fault(Seam::FinalWrite);\n\
                   std::fs::write(p, b);\n\
                 }",
            )],
            CrossOptions::default(),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn seam_coverage_ignores_files_outside_scope() {
        let hits = check(
            &[(
                "crates/accel/src/engine.rs",
                "fn f(p: &Path) { std::fs::write(p, b); }",
            )],
            CrossOptions::default(),
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    const SCHEMA_SRC: &str = "pub const VERSION: u64 = 3;\n\
        const U64: FieldKind = FieldKind::U64;\n\
        const STR: FieldKind = FieldKind::Str;\n\
        pub const EVENTS: &[EventSpec] = &[\n\
          EventSpec {\n\
            event_type: \"shard_done\",\n\
            fields: &[field(\"shard\", U64), field(\"reason\", STR)],\n\
          },\n\
          EventSpec {\n\
            event_type: \"flag\",\n\
            fields: &[field(\"on\", FieldKind::Bool)],\n\
          },\n\
        ];";

    #[test]
    fn schema_extraction_reads_the_literal_table() {
        let events = extract_schema(&lex(SCHEMA_SRC));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event_type, "shard_done");
        assert_eq!(
            events[0].fields,
            [
                ("shard".to_string(), "u64".to_string()),
                ("reason".to_string(), "str".to_string())
            ]
        );
        assert_eq!(events[1].fields, [("on".to_string(), "bool".to_string())]);
    }

    #[test]
    fn schema_drift_flags_mismatch_unknown_and_missing() {
        let hits = check(
            &[
                (SCHEMA_FILE, SCHEMA_SRC),
                (
                    "crates/accel/src/sim/scheduler.rs",
                    "fn a() { emit(Event::new(\"shard_done\").u64(\"shard\", s).str(\"reason\", r)); }\n\
                     fn b() { emit(Event::new(\"shard_done\").u64(\"shard\", s).u64(\"reason\", r)); }\n\
                     fn c() { emit(Event::new(\"shard_done\").u64(\"shard\", s)); }\n\
                     fn d() { emit(Event::new(\"mystery\").u64(\"x\", x)); }",
                ),
            ],
            CrossOptions::default(),
        );
        let lines: Vec<u32> = hits
            .iter()
            .filter(|v| v.lint == LintId::SchemaDrift)
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, [2, 3, 4], "{hits:?}");
        assert!(hits[0].message.contains("requires `.str(\"reason\", ..)`"));
        assert!(hits[1].message.contains("missing required field(s) reason"));
        assert!(hits[2].message.contains("not in obs::schema::EVENTS"));
    }

    #[test]
    fn schema_drift_extra_field_and_noop_without_schema_file() {
        let emit = (
            "crates/accel/src/campaign.rs",
            "fn a() { emit(Event::new(\"flag\").bool(\"on\", v).u64(\"extra\", 1)); }",
        );
        let hits = check(&[(SCHEMA_FILE, SCHEMA_SRC), emit], CrossOptions::default());
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("does not declare"));
        // Without the schema file present the lint stays silent.
        assert!(check(&[emit], CrossOptions::default()).is_empty());
    }
}
