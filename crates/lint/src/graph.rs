//! Workspace symbol table, call graph, and panic reachability.
//!
//! Built from the per-file [`crate::parser`] output. Resolution is a
//! deliberate over-approximation: a method call `x.frob()` edges to
//! *every* `frob` method in the workspace, because without types the
//! analyzer cannot know the receiver — and for a reachability lint a
//! spurious edge is a false positive someone reviews once, while a
//! missing edge is a panic the harness discovers in production.
//! External calls (`std`, unresolvable paths) produce no edge; their
//! panics are invisible, which the `unwrap`/`expect` constructs at the
//! call sites themselves compensate for.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::{CallSite, FnItem, ParsedFile};

/// Why a function is considered reachable from a crash-safe entry
/// point: the entry and the immediate caller that pulled it in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Origin {
    /// Qualified name of the entry point (e.g. `accel::sim::evaluate`).
    pub entry: String,
    /// Qualified name of the direct caller, or the entry itself when
    /// the function *is* the entry.
    pub via: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All non-test functions, indexed by id.
    pub fns: Vec<GraphFn>,
    by_qname: BTreeMap<String, usize>,
    /// name → ids of *free* functions (no self type), per crate.
    free_by_name: BTreeMap<(String, String), Vec<usize>>,
    /// (type, method) → ids.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// method name → ids (receiver unknown).
    by_method_name: BTreeMap<String, Vec<usize>>,
}

/// One function node plus the file context resolution needs.
#[derive(Debug, Clone)]
pub struct GraphFn {
    /// The parsed item.
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate (library) name of the defining file.
    pub crate_name: String,
    /// Index into the owning [`ParsedFile`]'s `uses` table, shared per
    /// file: `(file_id)` to look up imports during resolution.
    file_id: usize,
}

impl Graph {
    /// Builds the graph over every parsed file.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut g = Graph::default();
        for (file_id, pf) in files.iter().enumerate() {
            for item in &pf.fns {
                let id = g.fns.len();
                g.fns.push(GraphFn {
                    item: item.clone(),
                    file: pf.path.clone(),
                    crate_name: pf.crate_name.clone(),
                    file_id,
                });
                g.by_qname.entry(item.qname.clone()).or_insert(id);
                match &item.self_ty {
                    Some(ty) => {
                        g.methods
                            .entry((ty.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                        g.by_method_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => {
                        g.free_by_name
                            .entry((pf.crate_name.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        g
    }

    /// Looks up a function id by exact qualified name.
    pub fn fn_by_qname(&self, qname: &str) -> Option<usize> {
        self.by_qname.get(qname).copied()
    }

    /// Resolves one call site in `caller` to candidate callee ids.
    ///
    /// Resolution order: method-name match for `.m()`; use-alias
    /// expansion; crate-qualified suffix match; `Type::method`; bare
    /// free-function name within the caller's crate. Unresolvable
    /// paths (std, primitives, enum constructors) yield no candidates.
    pub fn resolve(&self, files: &[ParsedFile], caller: usize, call: &CallSite) -> Vec<usize> {
        let gf = &self.fns[caller];
        if call.is_method {
            let name = call.segments.last().map(String::as_str).unwrap_or("");
            return self.by_method_name.get(name).cloned().unwrap_or_default();
        }
        let mut segs: Vec<String> = call.segments.clone();
        if segs.is_empty() {
            return Vec::new();
        }
        // Normalise the head: `crate`/`self`/`super` stay inside the
        // caller's crate; a use alias expands to its full path.
        match segs[0].as_str() {
            "crate" | "self" | "super" => {
                segs.remove(0);
                if segs.is_empty() {
                    return Vec::new();
                }
                return self.resolve_in_crate(&gf.crate_name, &segs);
            }
            "std" | "core" | "alloc" => return Vec::new(),
            "Self" => {
                // `Self::helper()` — method or associated fn of the
                // caller's own type.
                if let (Some(ty), Some(name)) = (&gf.item.self_ty, segs.last()) {
                    return self
                        .methods
                        .get(&(ty.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                return Vec::new();
            }
            _ => {}
        }
        if let Some(u) = files[gf.file_id]
            .uses
            .iter()
            .find(|u| u.alias == segs[0])
        {
            let mut full = u.segments.clone();
            full.extend(segs.iter().skip(1).cloned());
            if matches!(full[0].as_str(), "std" | "core" | "alloc") {
                return Vec::new();
            }
            segs = full;
        }
        // Crate-qualified path into this or another workspace crate.
        if self.crate_exists(files, &segs[0]) {
            let (head, rest) = segs.split_first().map(|(h, r)| (h.clone(), r.to_vec())).unwrap();
            if rest.is_empty() {
                return Vec::new();
            }
            return self.resolve_in_crate(&head, &rest);
        }
        // `Type::method` (head is a type-looking ident).
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let name = &segs[segs.len() - 1];
            if ty.chars().next().is_some_and(char::is_uppercase) {
                return self
                    .methods
                    .get(&(ty.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // Module-qualified free fn without a crate prefix
            // (`sim::evaluate` from inside `accel`): suffix match.
            return self.resolve_in_crate(&gf.crate_name, &segs);
        }
        // Bare name: free fn in the caller's crate.
        self.free_by_name
            .get(&(gf.crate_name.clone(), segs[0].clone()))
            .cloned()
            .unwrap_or_default()
    }

    fn crate_exists(&self, files: &[ParsedFile], name: &str) -> bool {
        files.iter().any(|f| f.crate_name == name)
    }

    /// Functions in `crate_name` whose qname segments end with `rest`.
    fn resolve_in_crate(&self, crate_name: &str, rest: &[String]) -> Vec<usize> {
        let suffix = rest.join("::");
        let name = rest.last().map(String::as_str).unwrap_or("");
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.crate_name == crate_name
                    && f.item.name == name
                    && (f.item.qname.ends_with(&format!("::{suffix}"))
                        || f.item.qname == format!("{crate_name}::{suffix}"))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over unprotected call edges from the entry-point qnames.
    /// Returns, per function id, the [`Origin`] that first reached it
    /// (`None` = unreachable). Calls lexically inside `catch_unwind`
    /// arguments are cut: a panic beyond them is converted to a typed
    /// retry by the harness, which is exactly the contract the lint
    /// enforces.
    pub fn reachable(&self, files: &[ParsedFile], entries: &[&str]) -> Vec<Option<Origin>> {
        let mut origin: Vec<Option<Origin>> = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        let mut seen = BTreeSet::new();
        for entry in entries {
            if let Some(id) = self.fn_by_qname(entry) {
                origin[id] = Some(Origin {
                    entry: entry.to_string(),
                    via: entry.to_string(),
                });
                seen.insert(id);
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            let entry = origin[id].as_ref().map(|o| o.entry.clone()).unwrap_or_default();
            let caller_qname = self.fns[id].item.qname.clone();
            let calls = self.fns[id].item.calls.clone();
            for call in &calls {
                if call.protected {
                    continue;
                }
                for callee in self.resolve(files, id, call) {
                    if seen.insert(callee) {
                        origin[callee] = Some(Origin {
                            entry: entry.clone(),
                            via: caller_qname.clone(),
                        });
                        queue.push_back(callee);
                    }
                }
            }
        }
        origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    /// A three-crate fixture exercising free-fn, method, cross-crate,
    /// and protected-edge resolution.
    fn fixture() -> Vec<ParsedFile> {
        let sim = "pub fn evaluate() {\n\
                     let out = catch_unwind(|| { shard_guarded(); });\n\
                     plan();\n\
                   }\n\
                   fn plan() { ancode::an::encode(1); }\n\
                   fn shard_guarded() { x.unwrap(); }";
        let campaign = "pub struct Campaign;\n\
                        impl Campaign {\n\
                          pub fn run(&mut self) { self.step(); }\n\
                          fn step(&mut self) { helpers::finish(); }\n\
                        }\n\
                        mod helpers { pub fn finish() { y.expect(\"no\"); } }";
        let an = "pub fn encode(x: u64) -> u64 { table()[0] }\n\
                  fn table() -> &'static [u64] { &[1] }\n\
                  pub fn orphan() { z.unwrap(); }";
        vec![
            parse_file("crates/accel/src/sim/mod.rs", "accel", &lex(sim)),
            parse_file("crates/accel/src/campaign.rs", "accel", &lex(campaign)),
            parse_file("crates/core/src/an.rs", "ancode", &lex(an)),
        ]
    }

    #[test]
    fn cross_crate_and_method_edges_resolve() {
        let files = fixture();
        let g = Graph::build(&files);
        let origin = g.reachable(&files, &["accel::sim::evaluate", "accel::campaign::Campaign::run"]);
        let by = |q: &str| origin[g.fn_by_qname(q).unwrap()].clone();

        // evaluate → plan → ancode::an::encode → table.
        assert_eq!(by("accel::sim::plan").unwrap().entry, "accel::sim::evaluate");
        assert_eq!(by("ancode::an::encode").unwrap().via, "accel::sim::plan");
        assert!(by("ancode::an::table").is_some());
        // Campaign::run → step (method) → helpers::finish.
        let fin = by("accel::campaign::Campaign::step").unwrap();
        assert_eq!(fin.entry, "accel::campaign::Campaign::run");
        assert!(by("accel::campaign::helpers::finish").is_some());
        // The guarded shard is only called behind catch_unwind: cut.
        assert!(by("accel::sim::shard_guarded").is_none());
        // Never called at all.
        assert!(by("ancode::an::orphan").is_none());
    }

    #[test]
    fn use_alias_expands_before_resolution() {
        let a = "use other::deep::work as w;\n?pub fn top() { w(); }".replace('?', "");
        let b = "pub mod deep { pub fn work() { q.unwrap(); } }";
        let files = vec![
            parse_file("crates/alpha/src/lib.rs", "alpha", &lex(&a)),
            parse_file("crates/other/src/lib.rs", "other", &lex(b)),
        ];
        let g = Graph::build(&files);
        let origin = g.reachable(&files, &["alpha::top"]);
        assert!(origin[g.fn_by_qname("other::deep::work").unwrap()].is_some());
    }
}
