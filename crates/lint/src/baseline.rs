//! The ratchet baseline.
//!
//! Pre-existing violations are recorded in `lint-baseline.toml` as
//! per-`(lint, file)` counts. `repro-lint check` fails when a count
//! *grows* (a new violation) and also when it *shrinks* (the baseline
//! is stale and must be tightened with `repro-lint baseline`), so the
//! checked-in file always reflects reality and the violation count can
//! only ratchet down.
//!
//! Counts, not line numbers, key the baseline: unrelated edits shift
//! lines constantly, but the number of violations in a file only
//! changes when someone adds or removes one.
//!
//! The file is a TOML subset read and written by this module (the
//! checker is dependency-free): `[lint_name]` sections holding
//! `"path" = count` entries, sorted, with `#` comment lines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lints::Violation;

/// Per-lint, per-file violation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `lint name -> (file -> count)`, kept sorted for stable output.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// A baseline parse failure (line number and description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Builds a baseline from a violation list.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for v in violations {
            *counts
                .entry(v.lint.name().to_string())
                .or_default()
                .entry(v.file.clone())
                .or_default() += 1;
        }
        Baseline { counts }
    }

    /// Parses the TOML-subset baseline format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ParseError {
                line: idx + 1,
                message,
            };
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(name.trim().to_string());
                counts.entry(name.trim().to_string()).or_default();
                continue;
            }
            let Some(section) = &section else {
                return Err(err(format!("entry before any [section]: {line}")));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected `\"file\" = count`: {line}")));
            };
            let key = key.trim();
            let key = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| err(format!("file key must be double-quoted: {key}")))?;
            let count: u64 = value
                .trim()
                .parse()
                .map_err(|_| err(format!("count must be a non-negative integer: {value}")))?;
            counts
                .entry(section.clone())
                .or_default()
                .insert(key.to_string(), count);
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline back to its canonical file form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# repro-lint baseline: pre-existing violation counts, keyed per lint and file.\n\
             # New violations (count above baseline) fail `repro-lint check`; so does a\n\
             # stale entry (count below baseline). Regenerate with:\n\
             #     cargo run -p repro-lint -- baseline\n",
        );
        for (lint, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            let _ = write!(out, "\n[{lint}]\n");
            for (file, count) in files {
                let _ = writeln!(out, "\"{file}\" = {count}");
            }
        }
        out
    }

    /// The recorded count for one `(lint, file)` pair.
    pub fn count(&self, lint: &str, file: &str) -> u64 {
        self.counts
            .get(lint)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }
}

/// One baseline comparison finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// More violations than the baseline records: new violations. The
    /// `Vec` holds every current violation of this `(lint, file)` pair
    /// (line numbers shift, so the specific new one cannot be named).
    Regression {
        /// Lint name.
        lint: String,
        /// Workspace-relative file.
        file: String,
        /// Baseline count.
        baseline: u64,
        /// Current violations for this pair.
        current: Vec<Violation>,
    },
    /// Fewer violations than recorded: the baseline is stale.
    Stale {
        /// Lint name.
        lint: String,
        /// Workspace-relative file.
        file: String,
        /// Baseline count.
        baseline: u64,
        /// Current count.
        current: u64,
    },
}

/// Compares current violations against the baseline.
///
/// Returns every regression and staleness finding; an empty result
/// means the workspace matches the baseline exactly.
pub fn compare(baseline: &Baseline, violations: &[Violation]) -> Vec<Drift> {
    let current = Baseline::from_violations(violations);
    let mut drifts = Vec::new();

    // All (lint, file) pairs present on either side, in sorted order.
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for (lint, files) in current.counts.iter().chain(baseline.counts.iter()) {
        for file in files.keys() {
            let pair = (lint.as_str(), file.as_str());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
    }
    pairs.sort_unstable();

    for (lint, file) in pairs {
        let want = baseline.count(lint, file);
        let have = current.count(lint, file);
        if have > want {
            drifts.push(Drift::Regression {
                lint: lint.to_string(),
                file: file.to_string(),
                baseline: want,
                current: violations
                    .iter()
                    .filter(|v| v.lint.name() == lint && v.file == file)
                    .cloned()
                    .collect(),
            });
        } else if have < want {
            drifts.push(Drift::Stale {
                lint: lint.to_string(),
                file: file.to_string(),
                baseline: want,
                current: have,
            });
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::LintId;

    fn violation(lint: LintId, file: &str, line: u32) -> Violation {
        Violation {
            lint,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let violations = vec![
            violation(LintId::LossyCast, "crates/core/src/an.rs", 3),
            violation(LintId::LossyCast, "crates/core/src/an.rs", 9),
            violation(LintId::FloatEq, "crates/xbar/src/stats.rs", 4),
        ];
        let baseline = Baseline::from_violations(&violations);
        let text = baseline.render();
        let back = Baseline::parse(&text).expect("parse");
        assert_eq!(back, baseline);
        assert_eq!(back.count("lossy_cast", "crates/core/src/an.rs"), 2);
        assert_eq!(back.count("float_eq", "crates/xbar/src/stats.rs"), 1);
        assert_eq!(back.count("float_eq", "unknown.rs"), 0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("\"orphan\" = 3").is_err());
        assert!(Baseline::parse("[ok]\nunquoted = 3").is_err());
        assert!(Baseline::parse("[ok]\n\"f\" = banana").is_err());
        assert!(Baseline::parse("# comment only\n").unwrap().counts.is_empty());
    }

    #[test]
    fn compare_detects_regressions_and_staleness() {
        let recorded = vec![
            violation(LintId::LossyCast, "a.rs", 1),
            violation(LintId::LossyCast, "a.rs", 2),
        ];
        let baseline = Baseline::from_violations(&recorded);

        // Same counts: clean.
        assert!(compare(&baseline, &recorded).is_empty());

        // One more violation: regression carrying all current entries.
        let mut grown = recorded.clone();
        grown.push(violation(LintId::LossyCast, "a.rs", 7));
        match &compare(&baseline, &grown)[..] {
            [Drift::Regression {
                baseline: b,
                current,
                ..
            }] => {
                assert_eq!(*b, 2);
                assert_eq!(current.len(), 3);
            }
            other => panic!("expected one regression, got {other:?}"),
        }

        // One fewer: stale baseline.
        match &compare(&baseline, &recorded[..1])[..] {
            [Drift::Stale {
                baseline: b,
                current,
                ..
            }] => {
                assert_eq!(*b, 2);
                assert_eq!(*current, 1);
            }
            other => panic!("expected one staleness finding, got {other:?}"),
        }

        // A violation in a file the baseline has never seen.
        let fresh = vec![violation(LintId::FloatEq, "b.rs", 1)];
        let drifts = compare(&Baseline::default(), &fresh);
        assert!(matches!(&drifts[..], [Drift::Regression { baseline: 0, .. }]));
    }
}
