#!/bin/bash
# Regenerates every table and figure of the paper. Results land in
# results/*.json; logs in results/logs/.
set -u
mkdir -p results/logs
export REPRO_TRAIN=${REPRO_TRAIN:-8000}
run() {
  name=$1; samples=$2
  echo "=== $name (REPRO_SAMPLES=$samples) ==="
  REPRO_SAMPLES=$samples cargo run --release -p bench --bin "$name" \
    > "results/logs/$name.log" 2>&1
  echo "    done: $(date +%H:%M:%S)"
}
run fig10_misclassification ${REPRO_SAMPLES:-60}
run table3_alexnet ${REPRO_SAMPLES:-60}
run fig11_cell_faults ${REPRO_SAMPLES:-36}
run fig12_sensitivity ${REPRO_SAMPLES:-36}
run ablation_group_size 24
run ablation_policy 24
run ablation_rtn_offset 24
run ablation_table_depth 24
echo "all experiments complete"
