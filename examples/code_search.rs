//! The per-array `A` search (§V-B4) in isolation.
//!
//! Builds the row-error model of one encoded operand group under each
//! candidate `A`, constructs its data-aware table, and shows how the
//! covered error probability drives the selection — including why the
//! hardware restricts the divider to five constants.
//!
//! Run with: `cargo run --release --example code_search`

use ancode::data_aware::DataAwareConfig;
use ancode::search::{self, DEFAULT_HARDWARE_CANDIDATES};
use ancode::{RowError, RowErrorModel};

/// A toy row-error model whose probabilities depend on `A`: larger
/// multipliers smear more 1s into the stored pattern, raising the
/// per-row error rates (the circular dependence the paper notes).
fn model_for(a: u64) -> Result<RowErrorModel, ancode::CodeError> {
    let density = 0.3 + 0.4 * (a as f64).log2() / 10.0;
    let rows = (0..8)
        .map(|r| {
            let weight = (r + 1) as f64 / 8.0;
            RowError {
                lsb_bit: r * 2,
                p_high: 0.04 * density * weight,
                p_low: 0.008 * density * weight,
                stuck: false,
            }
        })
        .collect();
    Ok(RowErrorModel::new(rows, 16))
}

fn main() -> Result<(), ancode::CodeError> {
    let config = DataAwareConfig::default();

    println!("== Full search: all odd A with A·3 < 2^9 ==");
    let full = search::select_a_full(9, 3, 16, &config, model_for)?;
    println!(
        "evaluated {} candidates, best A = {} covering {:.4} error probability",
        full.evaluated,
        full.code.a(),
        full.coverage
    );

    println!("\n== Hardware-constrained search: 5 divider constants ==");
    for &a in &DEFAULT_HARDWARE_CANDIDATES {
        let table = ancode::data_aware::build_table(a, &model_for(a)?, &config)?;
        println!(
            "A = {a:>4}: {:>3} table entries, coverage {:.4}",
            table.len(),
            table.covered_probability()
        );
    }
    let hw = search::select_a_hardware(9, 3, 16, &config, model_for)?;
    println!(
        "hardware pick: A = {} covering {:.4} (vs {:.4} for the full search)",
        hw.code.a(),
        hw.coverage,
        full.coverage
    );

    println!("\n== Minimal single-error constants (Brown's table) ==");
    for (width, label) in [(9u32, "Figure 4's 9-bit words"), (39, "32-bit operands")] {
        println!(
            "width {width:>2} ({label}): minimal A = {}",
            ancode::min_single_error_a(width)
        );
    }
    Ok(())
}
