//! End-to-end DNN inference on the noisy accelerator.
//!
//! Trains the paper's MLP2 topology on the synthetic digits dataset,
//! lowers it to 16-bit fixed point with ISAAC's negative-value
//! normalization, and runs the test set through three accelerator
//! configurations — reporting the misclassification rates the Figure 10
//! experiments sweep at scale.
//!
//! Run with: `cargo run --release --example digit_inference`
//! (set `EXAMPLE_SAMPLES` / `EXAMPLE_TRAIN` to resize).

use accel::{AccelConfig, ProtectionScheme};
use neural::{data, models, QuantizedNetwork};
use rand_chacha::rand_core::SeedableRng;

fn env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_train = env("EXAMPLE_TRAIN", 2000);
    let n_test = env("EXAMPLE_SAMPLES", 20);

    // 1. Train the float network (the paper uses TensorFlow here).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let mut net = models::mlp2(&mut rng);
    let mut train = data::digits(n_train, 42);
    data::shuffle(&mut train, 3);
    println!("training MLP2 on {n_train} synthetic digits…");
    for epoch in 0..6 {
        let stats = net.train_epoch(&train.images, &train.labels, 32, 0.1);
        println!("  epoch {epoch}: loss {:.4} acc {:.3}", stats.loss, stats.accuracy);
    }

    let test = data::digits(n_test, 777);
    let software_err = 1.0 - net.evaluate(&test.images, &test.labels);
    println!("\nsoftware (float) misclassification: {:.1}%", software_err * 100.0);

    // 2. Lower to fixed point and run on the accelerator.
    let qnet = QuantizedNetwork::from_network(&net);
    println!("\n{:<10} {:>14} {:>16}", "scheme", "misclass", "ECU corrected");
    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::data_aware(9),
    ] {
        let config = AccelConfig::new(scheme.clone())
            .with_cell_bits(4) // aggressive multi-bit cells
            .with_fault_rate(1e-3); // Table I stuck-at rate
        let result = accel::sim::evaluate(&qnet, &test.images, &test.labels, &config, 5, 1)
            .expect("evaluation failed");
        println!(
            "{:<10} {:>13.1}% {:>16}",
            scheme.label(),
            result.misclassification * 100.0,
            result.stats.corrected
        );
    }

    println!(
        "\nAt 4-bit cells the unprotected accelerator visibly degrades;\n\
         the data-aware ABN code recovers most of the loss — the paper's\n\
         'aggressively increase bits per cell under a bounded error rate'\n\
         use case (§VIII-A)."
    );
}
