//! A noisy in-situ dot product, protected and unprotected.
//!
//! Programs a small weight matrix into simulated memristive crossbars
//! under three schemes (unprotected, naïve static code, data-aware
//! ABN-9), runs repeated matrix-vector products through the noisy
//! analog path, and reports how far each scheme's outputs stray from
//! the exact fixed-point result — plus what the error correction unit
//! saw along the way.
//!
//! Run with: `cargo run --release --example noisy_dot_product`

use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use neural::{MvmEngineProvider, QuantizedMatrix, Tensor};

fn main() {
    // A 16×96 weight matrix with structure (mixed magnitudes).
    let weights: Vec<f32> = (0..16 * 96)
        .map(|i| ((i as f32 * 0.618).sin() * 0.8).powi(3))
        .collect();
    let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![16, 96], weights));
    let input: Vec<u16> = (0..96).map(|j| (j as u16).wrapping_mul(683)).collect();

    // Exact fixed-point reference.
    let truth: Vec<i64> = matrix
        .rows()
        .iter()
        .map(|row| {
            row.iter()
                .zip(&input)
                .map(|(&w, &x)| w as i64 * x as i64)
                .sum()
        })
        .collect();
    let truth_norm: f64 = truth.iter().map(|&t| (t as f64).powi(2)).sum::<f64>().sqrt();

    println!("16×96 matrix, 3-bit cells, Table I noise parameters\n");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "rel. error", "clean", "corrected", "miscorr."
    );

    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Static128,
        ProtectionScheme::data_aware(9),
    ] {
        let config = AccelConfig::new(scheme.clone())
            .with_cell_bits(3)
            .with_fault_rate(0.0);
        let provider = CrossbarProvider::new(config, 2024);
        let mut engine = provider.build(&matrix);

        // Average deviation over several reads (independent noise).
        let mut err = 0.0f64;
        let reads = 8;
        for _ in 0..reads {
            let out = engine.mvm(&input);
            let dist: f64 = out
                .iter()
                .zip(&truth)
                .map(|(&o, &t)| ((o - t) as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            err += dist / truth_norm;
        }
        let stats = provider.stats();
        println!(
            "{:<12} {:>11.5}% {:>10} {:>10} {:>10}",
            scheme.label(),
            err / reads as f64 * 100.0,
            stats.clean,
            stats.corrected,
            stats.miscorrected
        );
    }

    println!(
        "\nThe data-aware code trims the output deviation while the naïve\n\
         multi-operand code wastes its table on uniform single-bit errors\n\
         (§V-A's limitations of naïve AN codes)."
    );
}
