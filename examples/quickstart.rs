//! Quickstart: arithmetic error correction for in-situ computation.
//!
//! Walks the paper's core ideas in code: why Hamming codes cannot
//! protect analog addition (Figure 5), how AN codes conserve it
//! (Figure 4), what the `B` term adds, and how data-aware allocation
//! spends the correction table on the errors that matter.
//!
//! Run with: `cargo run --release --example quickstart`

use ancode::data_aware::{build_code, DataAwareConfig};
use ancode::{AbnCode, AnCode, CorrectionPolicy, RowError, RowErrorModel, Syndrome};
use wideint::{I256, U256};

fn main() -> Result<(), ancode::CodeError> {
    // ------------------------------------------------------------------
    // 1. AN codes conserve addition (Figure 4 of the paper).
    // ------------------------------------------------------------------
    println!("== 1. AN codes conserve addition ==");
    let an = AnCode::new(19)?;
    let x = an.encode(U256::from(11u64))?;
    let y = an.encode(U256::from(15u64))?;
    let sum = x + y; // happens in the analog domain on real hardware
    println!("A·11 + A·15 = {sum} = A·{}", sum / U256::from(19u64));
    assert!(an.is_codeword(sum));

    // An additive error — one physical row mis-quantizing by +2 —
    // leaves a nonzero residue that indexes the correction table.
    let observed = sum + U256::from(2u64);
    println!(
        "observed {observed}: residue mod 19 = {} (error detected)",
        an.residue(observed)
    );

    // ------------------------------------------------------------------
    // 2. The full ABN pipeline: correct with A, validate with B.
    // ------------------------------------------------------------------
    println!("\n== 2. ABN decode ==");
    let code = AbnCode::classic(19, 3, 5)?;
    let clean = code.encode(U256::from(26u64))?;
    for error in [0i128, 2, -8, 512] {
        let observed = I256::from(clean) + I256::from_i128(error);
        let outcome = code.decode(observed, CorrectionPolicy::Revert);
        println!(
            "error {error:>5}: decoded {} ({})",
            outcome.value, outcome.status
        );
    }
    // Note the +512 case: an error beyond the code's designed family
    // aliases onto a wrong table entry and decodes to 35 — the silent
    // miscorrection hazard of §V-A that motivates both the B check
    // (which catches ~2/3 of aliases) and data-aware allocation (which
    // puts the *probable* errors in the table to begin with).

    // ------------------------------------------------------------------
    // 3. Data-aware allocation: spend the table on likely, damaging
    //    errors instead of all single bits uniformly.
    // ------------------------------------------------------------------
    println!("\n== 3. Data-aware ABN code ==");
    // An 8-bit operand on 2-bit cells: four physical rows. Suppose the
    // stored data makes the MSB row error-prone (many driven 1s) and
    // the row at bit 2 contains a stuck-at cell.
    let model = RowErrorModel::new(
        vec![
            RowError::symmetric(0, 0.002),
            RowError {
                lsb_bit: 2,
                p_high: 0.01,
                p_low: 0.001,
                stuck: true,
            },
            RowError::symmetric(4, 0.01),
            RowError {
                lsb_bit: 6,
                p_high: 0.12,
                p_low: 0.02,
                stuck: false,
            },
        ],
        8,
    );
    let dyn_code = build_code(19, 3, &model, 8, &DataAwareConfig::default())?;
    println!("table for A = {} (split for the stuck row):", dyn_code.a());
    print!("{}", dyn_code.table());

    // The dominant error — the MSB row quantizing high — is corrected:
    let clean = dyn_code.encode(U256::from(200u64))?;
    let observed = I256::from(clean) + Syndrome::single(6, 1).value();
    let outcome = dyn_code.decode(observed, CorrectionPolicy::Revert);
    println!(
        "MSB-row error: decoded {} ({})",
        outcome.value, outcome.status
    );
    assert_eq!(outcome.value.to_i128(), Some(200));
    Ok(())
}
