#!/bin/bash
# Repository health gate: strict documentation build plus the tier-1
# build/test pair. Run before committing.
#
# The docs gate turns every rustdoc warning (broken intra-doc links,
# malformed examples) into an error; doctests run as part of the test
# suite, so `cargo doc` here only needs to validate, not execute.
set -eu
cd "$(dirname "$0")/.."

echo "=== docs gate (rustdoc warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "=== release build ==="
cargo build --release --quiet

echo "=== tests ==="
cargo test -q

echo "=== unwrap gate (crash-safe harness files) ==="
# The Monte-Carlo harness and campaign runner promise typed errors, not
# panics: reject any .unwrap() outside the #[cfg(test)] region.
for f in crates/accel/src/sim.rs crates/accel/src/campaign.rs; do
  if sed -n '1,/#\[cfg(test)\]/p' "$f" | grep -n '\.unwrap()' ; then
    echo "FAIL: .unwrap() in non-test code of $f" >&2
    exit 1
  fi
done
echo "no unwrap() in harness non-test code"

echo "=== campaign smoke run (2 epochs, tiny net) ==="
smoke_out="$(mktemp -d)/campaign-NoECC.json"
cargo run --release --quiet -p reram-ecc -- campaign NoECC 2 \
  --samples 3 --train 40 --out "$smoke_out" > /dev/null
test -s "$smoke_out" || { echo "FAIL: campaign smoke wrote no checkpoint" >&2; exit 1; }
rm -f "$smoke_out"
echo "campaign smoke run passed"

echo "all checks passed"
