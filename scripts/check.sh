#!/bin/bash
# Repository health gate: strict documentation build plus the tier-1
# build/test pair. Run before committing.
#
# The docs gate turns every rustdoc warning (broken intra-doc links,
# malformed examples) into an error; doctests run as part of the test
# suite, so `cargo doc` here only needs to validate, not execute.
set -eu
cd "$(dirname "$0")/.."

echo "=== docs gate (rustdoc warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "=== release build ==="
cargo build --release --quiet

echo "=== tests ==="
cargo test -q

echo "=== repro-lint self-tests (lexer fixtures + CLI) ==="
# The lint tool is itself load-bearing: exercise its lexer fixtures and
# end-to-end CLI tests before trusting its verdict on the workspace.
cargo test -q -p repro-lint

echo "=== repro-lint (workspace invariants) ==="
# Token-level invariant checker (see DESIGN.md "Enforced invariants"):
# panics in crash-safe crates, lossy casts in the arithmetic kernels,
# nondeterminism in seeded paths, float == comparisons. Pre-existing
# violations live in lint-baseline.toml; any regression — or a stale
# baseline entry — fails the gate.
cargo run --release --quiet -p repro-lint -- check

echo "=== allocation sanitizer (MVM hot path) ==="
# Counting global allocator proves CrossbarEngine::mvm_into performs
# zero heap allocations in steady state for NoECC, Static16 and ABN-9.
cargo test -q -p accel --features alloc-count --test alloc_free

echo "=== campaign smoke run (2 epochs, tiny net) ==="
smoke_out="$(mktemp -d)/campaign-NoECC.json"
cargo run --release --quiet -p reram-ecc -- campaign NoECC 2 \
  --samples 3 --train 40 --out "$smoke_out" > /dev/null
test -s "$smoke_out" || { echo "FAIL: campaign smoke wrote no checkpoint" >&2; exit 1; }
rm -f "$smoke_out"
echo "campaign smoke run passed"

echo "all checks passed"
