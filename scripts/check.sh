#!/bin/bash
# Repository health gate: strict documentation build plus the tier-1
# build/test pair. Run before committing.
#
# The docs gate turns every rustdoc warning (broken intra-doc links,
# malformed examples) into an error; doctests run as part of the test
# suite, so `cargo doc` here only needs to validate, not execute.
set -eu
cd "$(dirname "$0")/.."

echo "=== docs gate (rustdoc warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "=== release build ==="
cargo build --release --quiet

echo "=== tests ==="
cargo test -q

echo "=== repro-lint self-tests (lexer fixtures + CLI) ==="
# The lint tool is itself load-bearing: exercise its lexer fixtures and
# end-to-end CLI tests before trusting its verdict on the workspace.
cargo test -q -p repro-lint

echo "=== repro-lint (workspace invariants) ==="
# Syntax-aware invariant checker (see DESIGN.md "Enforced invariants"):
# call-graph panic reachability from the crash-safe entry points,
# chaos-seam coverage of durable I/O, obs schema drift at emit sites,
# plus the per-file lints (lossy casts, nondeterminism, float ==).
# Pre-existing violations live in lint-baseline.toml; any regression —
# or a stale baseline entry — fails the gate. The whole workspace
# analysis (lex + parse + call graph + lints) must stay interactive:
# more than 5 s wall means the analyzer grew an accidental
# quadratic, and the gate catches it before it becomes a habit.
lint_t0="$(date +%s%N)"
cargo run --release --quiet -p repro-lint -- check
lint_t1="$(date +%s%N)"
lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
echo "repro-lint wall time: ${lint_ms} ms (budget 5000 ms)"
[ "$lint_ms" -lt 5000 ] || { echo "FAIL: repro-lint exceeded its 5 s budget" >&2; exit 1; }

echo "=== stale doc names (backticked types in *.md must exist in source) ==="
# Docs drift gate: every backtick-quoted CamelCase identifier mentioned
# in the top-level markdown must still name something in the Rust
# source. Catches references to renamed/removed types (e.g. the PR-2
# `MvmEngine` → `CrossbarEngine` engine rename) the moment the code
# moves on without the docs.
stale=0
for ident in $(grep -hoE '`[A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*`' \
                 README.md DESIGN.md CHANGES.md EXPERIMENTS.md ROADMAP.md 2>/dev/null \
               | tr -d '`' | sort -u); do
  if ! grep -rqw "$ident" crates/ --include='*.rs'; then
    echo "FAIL: \`$ident\` is referenced in the docs but absent from crates/" >&2
    stale=1
  fi
done
[ "$stale" -eq 0 ] || exit 1
echo "doc identifiers all resolve"

echo "=== batch equivalence smoke (batch-of-1 delegation, batch-of-8 vs sequential) ==="
# The batched-kernel contract of DESIGN.md §2: batch-of-1 delegates to
# the scalar kernel bit-for-bit, and with noise off a batch of N equals
# N sequential calls for every scheme.
cargo test -q -p accel --test batch_equivalence

echo "=== allocation sanitizer (MVM hot path) ==="
# Counting global allocator proves CrossbarEngine::mvm_into performs
# zero heap allocations in steady state for NoECC, Static16 and ABN-9.
cargo test -q -p accel --features alloc-count --test alloc_free

echo "=== allocation sanitizer (metrics enabled) ==="
# The observability layer must not reintroduce allocations: counters,
# histograms and spans are thread-local Cell slots (DESIGN.md §8), so
# the same zero-allocation proof must hold with live metrics.
cargo test -q -p accel --features alloc-count,obs --test alloc_free

echo "=== obs overhead gate (metrics-enabled MVM bench vs baseline) ==="
# Runs the engine bench with live metrics and compares the ABN-9 MVM
# mean against the recorded uninstrumented baseline (BENCH_engine.json,
# regenerated on this machine by scripts/bench_baseline.sh). More than
# 5% regression fails: the per-MVM instrumentation is a handful of
# thread-local counter bumps and must stay in the noise. Scheduler
# noise on a shared machine only ever *inflates* a run, so the gate
# takes the best of up to three attempts before failing.
# Exact-name match: the batched rows (mvm_16x128_ABN-9_b8/_b32) share
# the prefix, so a substring pattern would pick up the wrong row.
base_ns="$(awk -F'"mean_ns":' '/"name":"mvm_16x128_ABN-9",/ {split($2, a, ","); print a[1]}' BENCH_engine.json)"
obs_gate_ok=""
for attempt in 1 2 3; do
  obs_json="$(mktemp)"
  CRITERION_JSON="$obs_json" cargo bench -q -p bench --features obs --bench engine > /dev/null
  obs_ns="$(awk -F'"mean_ns":' '/"mvm_16x128_ABN-9"/ {split($2, a, ","); print a[1]}' "$obs_json")"
  rm -f "$obs_json"
  if awk -v base="$base_ns" -v with="$obs_ns" -v attempt="$attempt" 'BEGIN {
    if (base == "" || with == "") {
      print "FAIL: missing mvm_16x128_ABN-9 result (baseline or metrics run)" > "/dev/stderr"
      exit 1
    }
    printf "mvm_16x128_ABN-9 attempt %s: baseline %.0f ns, with metrics %.0f ns (%+.1f%%)\n",
           attempt, base, with, (with / base - 1) * 100
    exit !(with <= base * 1.05)
  }'; then
    obs_gate_ok=1
    break
  fi
done
if [ -z "$obs_gate_ok" ]; then
  echo "FAIL: metrics-enabled MVM regressed more than 5% vs BENCH_engine.json on 3 attempts" >&2
  exit 1
fi

echo "=== analytic-vs-MC smoke (pinned grid cell, DESIGN.md §11) ==="
# The analytic error model must keep agreeing with the Monte-Carlo
# harness on the pinned Fig 11 cell (MLP1 × 2-bit × ABN-9 × 0.1 %
# stuck-at) within the tolerance the tier-1 test pins (0.05). 8 samples
# keep the gate interactive; the recorded full smoke grid lives in
# BENCH_analytic.json.
REPRO_SAMPLES=8 cargo run --release --quiet -p bench --bin analytic_xval -- --gate
echo "analytic smoke passed"

echo "=== campaign smoke run (2 epochs, tiny net) ==="
smoke_out="$(mktemp -d)/campaign-NoECC.json"
cargo run --release --quiet -p reram-ecc -- campaign NoECC 2 \
  --samples 3 --train 40 --out "$smoke_out" > /dev/null
test -s "$smoke_out" || { echo "FAIL: campaign smoke wrote no checkpoint" >&2; exit 1; }
rm -f "$smoke_out"
echo "campaign smoke run passed"

echo "=== chaos smoke (fault-injected campaign must match the clean run) ==="
# Deterministic chaos (see crates/chaos + DESIGN.md "Failure model &
# recovery"): --chaos-seed injects seeded faults at every checkpoint /
# final-write / event seam plus mid-shard worker panics. The durability
# layer — CRC'd A/B checkpoint slots, retries, read-back-verified final
# write, seed-stable shard retries — must absorb all of it without
# changing one byte of the results. The seed is pinned, so the fault
# script replays bit-for-bit and this stage never flakes. An injected
# worker-panic message on stderr is expected — that IS the chaos; the
# gate is the byte-for-byte cmp below.
chaos_dir="$(mktemp -d)"
cargo run --release --quiet -p reram-ecc -- campaign NoECC 2 \
  --samples 3 --train 40 --out "$chaos_dir/clean.json" > /dev/null
cargo run --release --quiet -p reram-ecc -- campaign NoECC 2 \
  --samples 3 --train 40 --chaos-seed 7 --shard-retries 4 \
  --out "$chaos_dir/chaos.json" > /dev/null
cmp "$chaos_dir/clean.json" "$chaos_dir/chaos.json" \
  || { echo "FAIL: chaos-injected campaign diverged from the clean run" >&2; exit 1; }
rm -rf "$chaos_dir"
echo "chaos smoke passed"

echo "=== serve smoke (daemon, malformed frames, SIGKILL, restart replay) ==="
# The serving determinism contract (DESIGN.md "Service architecture &
# overload model"): every ok response is a pure function of (service
# seed, scheme, wear epoch, sample list). A daemon that is SIGKILLed
# mid-stream and restarted at the same seed must re-serve the same
# request set byte-for-byte. Responses on one connection may interleave
# across worker shards, so the comparison is order-insensitive (sorted).
serve_dir="$(mktemp -d)"
serve_bin="./target/release/reram-ecc"
serve_requests() {
  cat <<'EOF'
{"id":"s1","scheme":"NoECC","samples":[0,1]}
{"id":"s2","scheme":"ABN-9","samples":[2]}
this line is not json
{"id":"s3","scheme":"Static16","samples":[3,4,5]}
{"id":"s4","scheme":"NoSuchScheme","samples":[0]}
{"id":"s5","scheme":"NoECC","samples":[6,7]}
EOF
}
serve_wait_port() {
  for _ in $(seq 1 300); do
    p="$(sed -n 's/.*"port":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1)"
    if [ -n "$p" ]; then echo "$p"; return 0; fi
    sleep 0.1
  done
  echo "FAIL: serve daemon never printed its ready line" >&2
  return 1
}
# Run the binary directly (not via `cargo run`) so the daemon PID is
# the PID we SIGKILL.
"$serve_bin" serve --seed 7 --hidden 32 --train 60 --samples 16 \
  > "$serve_dir/ready1" 2> /dev/null &
serve_pid=$!
port="$(serve_wait_port "$serve_dir/ready1")"
serve_requests | "$serve_bin" serve-send "$port" > "$serve_dir/run1.raw"
sort "$serve_dir/run1.raw" > "$serve_dir/run1.sorted"
ok_count="$(grep -c '"ok":true' "$serve_dir/run1.sorted" || true)"
bad_count="$(grep -c '"error":"bad_request"' "$serve_dir/run1.sorted" || true)"
[ "$ok_count" -eq 4 ] || { echo "FAIL: expected 4 ok responses, got $ok_count" >&2; exit 1; }
[ "$bad_count" -eq 2 ] || { echo "FAIL: expected 2 bad_request responses, got $bad_count" >&2; exit 1; }
# SIGKILL the daemon while a second stream is in flight: the client
# loses its connection (tolerated), and no state may leak into the
# restart — the service is stateless by design.
serve_requests | "$serve_bin" serve-send "$port" > /dev/null 2>&1 &
sender_pid=$!
kill -9 "$serve_pid"
wait "$serve_pid" 2> /dev/null || true
wait "$sender_pid" 2> /dev/null || true
"$serve_bin" serve --seed 7 --hidden 32 --train 60 --samples 16 \
  > "$serve_dir/ready2" 2> /dev/null &
serve_pid=$!
port="$(serve_wait_port "$serve_dir/ready2")"
serve_requests | "$serve_bin" serve-send "$port" > "$serve_dir/run2.raw"
printf '{"admin":"shutdown"}\n' | "$serve_bin" serve-send "$port" > /dev/null
wait "$serve_pid" 2> /dev/null || true
sort "$serve_dir/run2.raw" > "$serve_dir/run2.sorted"
cmp "$serve_dir/run1.sorted" "$serve_dir/run2.sorted" \
  || { echo "FAIL: restarted daemon served different bytes for the same requests" >&2; exit 1; }
rm -rf "$serve_dir"
echo "serve smoke passed"

echo "=== grid smoke (campaign-grid, SIGKILL worker + driver, resume, byte-compare) ==="
# The grid runner's kill-anything contract (DESIGN.md "Failure model &
# recovery"): a sharded sweep whose worker AND driver are SIGKILLed
# mid-run under chaos seed 7, then resumed with the same command line,
# merges a grid_summary.json byte-identical to an uninterrupted
# fault-free run. Run the binary directly so worker/driver PIDs are
# real kill targets.
grid_dir="$(mktemp -d)"
grid_bin="./target/release/reram-ecc"
cat > "$grid_dir/spec.json" <<'EOF'
{
  "version": 1,
  "models": ["mlp2"],
  "schemes": ["NoECC", "ABN-9"],
  "cell_bits": [2],
  "writes_per_epoch": [200000.0],
  "seeds": [41],
  "epochs": 3,
  "samples": 16,
  "train": 300,
  "threads": 1,
  "checkpoint_every": 1,
  "initial_writes": 1000000.0,
  "error_model": "mc"
}
EOF
"$grid_bin" campaign-grid "$grid_dir/spec.json" --dir "$grid_dir/clean" \
  --workers 2 > /dev/null 2>&1
# Interrupted run: SIGKILL the first worker that appears (a worker's
# argv carries `--out <dir>/cells/...`; the driver's does not), then
# SIGKILL the driver while its leases are still claimed.
"$grid_bin" campaign-grid "$grid_dir/spec.json" --dir "$grid_dir/chaos" \
  --workers 2 --chaos-seed 7 --cell-retries 6 --max-lost-cells 0 \
  > /dev/null 2>&1 &
grid_pid=$!
worker_pid=""
for _ in $(seq 1 1200); do
  for p in /proc/[0-9]*/cmdline; do
    if tr '\0' ' ' < "$p" 2> /dev/null | grep -q -- "--out $grid_dir/chaos"; then
      worker_pid="${p#/proc/}"
      worker_pid="${worker_pid%/cmdline}"
      break 2
    fi
  done
  kill -0 "$grid_pid" 2> /dev/null \
    || { echo "FAIL: grid driver exited before a worker could be killed" >&2; exit 1; }
  sleep 0.05
done
[ -n "$worker_pid" ] || { echo "FAIL: no grid worker appeared to kill" >&2; exit 1; }
kill -9 "$worker_pid" 2> /dev/null || true
sleep 0.2
kill -9 "$grid_pid" 2> /dev/null || true
wait "$grid_pid" 2> /dev/null || true
# Resume with the same command line: stale leases from the dead driver
# are taken over, the killed cell resumes from its checkpoint slots.
"$grid_bin" campaign-grid "$grid_dir/spec.json" --dir "$grid_dir/chaos" \
  --workers 2 --chaos-seed 7 --cell-retries 6 --max-lost-cells 0 \
  > /dev/null 2>&1
cmp "$grid_dir/clean/grid_summary.json" "$grid_dir/chaos/grid_summary.json" \
  || { echo "FAIL: grid summary after SIGKILL+resume diverged from the clean run" >&2; exit 1; }
rm -rf "$grid_dir"
echo "grid smoke passed"

echo "all checks passed"
