#!/bin/bash
# Repository health gate: strict documentation build plus the tier-1
# build/test pair. Run before committing.
#
# The docs gate turns every rustdoc warning (broken intra-doc links,
# malformed examples) into an error; doctests run as part of the test
# suite, so `cargo doc` here only needs to validate, not execute.
set -eu
cd "$(dirname "$0")/.."

echo "=== docs gate (rustdoc warnings are errors) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "=== release build ==="
cargo build --release --quiet

echo "=== tests ==="
cargo test -q

echo "all checks passed"
