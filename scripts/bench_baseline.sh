#!/bin/bash
# Records the criterion benchmark baseline as machine-readable JSON.
#
# Runs the bench crate's criterion benches (codes, crossbar, engine by
# default; pass bench names to run a subset) and writes one JSON-lines
# file per bench at the repo root: BENCH_<name>.json, one object per
# benchmark with mean/median/min nanoseconds and the sampling plan.
# The vendored criterion stand-in (third_party/criterion) appends a line
# per benchmark when CRITERION_JSON is set; this script truncates each
# file first so reruns replace the baseline instead of growing it.
#
# BENCH_engine.json is committed: it is the reference the performance
# model in DESIGN.md §2 and any future hot-path change compare against.
# Regenerate it on the target machine before and after kernel changes —
# absolute numbers are machine-specific, only ratios are meaningful.
set -eu
cd "$(dirname "$0")/.."

benches=${*:-codes crossbar engine}
for b in $benches; do
  out="$PWD/BENCH_${b}.json"
  : > "$out"
  echo "=== bench $b -> BENCH_${b}.json ==="
  CRITERION_JSON="$out" cargo bench -q -p bench --bench "$b"
done

# Per-vector summary of the engine rows: the batched benches
# (mvm_16x128_<scheme>_b8/_b32) time one whole batched pass, so divide
# by the batch to compare against the single-vector rows directly.
case " $benches " in *" engine "*)
  echo "=== engine per-vector summary (batched rows divided by batch) ==="
  awk '
    /"name":"mvm_16x128_/ {
      split($0, n, "\""); name = n[4]
      split($0, m, /"mean_ns":/); split(m[2], a, ","); mean = a[1]
      batch = 1
      if (match(name, /_b[0-9]+$/)) batch = substr(name, RSTART + 2) + 0
      printf "  %-26s %14.1f ns/pass %14.1f ns/vector\n", name, mean, mean / batch
    }
  ' BENCH_engine.json
  ;;
esac

# Campaign per-epoch wall-clock: a smoke-sized lifetime campaign whose
# driver times every epoch and every checkpoint write separately
# (results/campaign_timing.json). The checkpoint_fraction figures back
# the crash-safety contract in DESIGN.md §2.2 — checkpointing must
# stay under 2% of epoch time. Runs in a scratch cwd so the recorded
# full-scale campaign artifacts under results/ are left untouched.
echo "=== bench campaign -> BENCH_campaign.json ==="
repo="$PWD"
scratch="$(mktemp -d)"
(cd "$scratch" && \
  REPRO_SAMPLES="${REPRO_SAMPLES:-12}" REPRO_TRAIN="${REPRO_TRAIN:-200}" \
  cargo run --release --quiet --manifest-path "$repo/Cargo.toml" \
    -p bench --bin lifetime_campaign -- --smoke)
cp "$scratch/results/campaign_timing.json" "$repo/BENCH_campaign.json"
rm -rf "$scratch"
