#!/bin/bash
# Records the criterion benchmark baseline as machine-readable JSON.
#
# Runs the bench crate's criterion benches (codes, crossbar, engine by
# default; pass bench names to run a subset) and writes one JSON-lines
# file per bench at the repo root: BENCH_<name>.json, one object per
# benchmark with mean/median/min nanoseconds and the sampling plan.
# The vendored criterion stand-in (third_party/criterion) appends a line
# per benchmark when CRITERION_JSON is set; this script truncates each
# file first so reruns replace the baseline instead of growing it.
#
# BENCH_engine.json is committed: it is the reference the performance
# model in DESIGN.md §2 and any future hot-path change compare against.
# Regenerate it on the target machine before and after kernel changes —
# absolute numbers are machine-specific, only ratios are meaningful.
set -eu
cd "$(dirname "$0")/.."

benches=${*:-codes crossbar engine}
for b in $benches; do
  out="$PWD/BENCH_${b}.json"
  : > "$out"
  echo "=== bench $b -> BENCH_${b}.json ==="
  CRITERION_JSON="$out" cargo bench -q -p bench --bench "$b"
done
