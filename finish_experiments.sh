#!/bin/bash
# Wait for fig10, then run the remaining experiments at reduced budgets.
set -u
while pgrep -x fig10_misclassi >/dev/null 2>&1; do sleep 10; done
export REPRO_TRAIN=8000
run() {
  name=$1; samples=$2
  echo "=== $name ($samples) $(date +%H:%M:%S) ==="
  REPRO_SAMPLES=$samples timeout 900 cargo run --release -p bench --bin "$name" \
    > "results/logs/$name.log" 2>&1
  echo "    done: $(date +%H:%M:%S) rc=$?"
}
run table3_alexnet 50
run fig12_sensitivity 16
run ablation_group_size 16
run ablation_policy 16
run ablation_rtn_offset 16
run ablation_table_depth 16
run table_resources 16
run ablation_remap 16
run fig11_cell_faults 12
echo "finish script complete"
