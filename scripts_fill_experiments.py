#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from results/logs/*.log rows."""
import re, sys, json, os

def parse_rows(path):
    rows = []
    if not os.path.exists(path):
        return rows
    pat = re.compile(r"\[(\w+)\] (\S+) (\d)b: misclass ([\d.]+) flips ([\d.]+) \((\d+) samples")
    sw = re.compile(r"\[(\w+)\] software misclassification: ([\d.]+)%")
    for line in open(path):
        m = pat.search(line)
        if m:
            rows.append(dict(network=m.group(1), scheme=m.group(2), bits=int(m.group(3)),
                             mis=float(m.group(4)), flips=float(m.group(5)), n=int(m.group(6))))
        m = sw.search(line)
        if m:
            rows.append(dict(network=m.group(1), scheme="Software", bits=0,
                             mis=float(m.group(2))/100.0, flips=0.0, n=0))
    return rows

def grid_table(rows):
    if not rows:
        return "_(run did not complete in the recorded session; regenerate with the binary above)_"
    nets = []
    for r in rows:
        if r["network"] not in nets:
            nets.append(r["network"])
    schemes = ["Software","NoECC","Static16","Static128","ABN-7","ABN-8","ABN-9","ABN-10"]
    out = []
    for net in nets:
        sub = [r for r in rows if r["network"] == net]
        n = max((r["n"] for r in sub), default=0)
        out.append(f"\n**{net}** ({n} samples/config; misclassification % / flip %):\n")
        out.append("| scheme | " + " | ".join(f"{b}-bit" for b in range(1,6)) + " |")
        out.append("|---|" + "---|"*5)
        for s in schemes:
            cells = []
            for b in range(1,6):
                match = [r for r in sub if r["scheme"]==s and r["bits"]==b]
                if s == "Software":
                    swr = [r for r in sub if r["scheme"]=="Software"]
                    cells.append(f"{swr[0]['mis']*100:.1f}" if swr else "—")
                elif match:
                    cells.append(f"{match[0]['mis']*100:.1f} / {match[0]['flips']*100:.1f}")
                else:
                    cells.append("—")
            out.append(f"| {s} | " + " | ".join(cells) + " |")
    return "\n".join(out)

def simple_json_table(path, cols):
    if not os.path.exists(path):
        return "_(run did not complete in the recorded session; regenerate with the binary above)_"
    data = json.load(open(path))
    out = ["| " + " | ".join(cols) + " |", "|" + "---|"*len(cols)]
    for row in data:
        out.append("| " + " | ".join(fmt(row.get(c)) for c in cols) + " |")
    return "\n".join(out)

def fmt(v):
    if isinstance(v, float):
        return f"{v:.4f}" if abs(v) < 10 else f"{v:.1f}"
    return str(v)

md = open("EXPERIMENTS.md").read()
md = md.replace("<!-- FIG10_TABLE -->", grid_table(parse_rows("results/logs/fig10_misclassification.log")))
md = md.replace("<!-- FIG11_TABLE -->", grid_table(parse_rows("results/logs/fig11_cell_faults.log")))
def fig12_table():
    path = "results/logs/fig12_sensitivity.log"
    if not os.path.exists(path):
        return "_(not recorded)_"
    pat = re.compile(r"(ΔR/R\(R_LO\)|p_RTN)=([\d.]+)%\s+(\S+)\s+-> ([\d.]+)%")
    rows = [pat.search(l) for l in open(path)]
    rows = [m for m in rows if m]
    if not rows:
        return "_(not recorded)_"
    out = ["| axis | value | scheme | misclassification |", "|---|---|---|---|"]
    for m in rows:
        out.append(f"| {m.group(1)} | {m.group(2)}% | {m.group(3)} | {m.group(4)}% |")
    return "\n".join(out)

if os.path.exists("results/fig12_sensitivity.json"):
    md = md.replace("<!-- FIG12_TABLE -->", simple_json_table("results/fig12_sensitivity.json",
        ["axis","value","scheme","misclassification"]))
else:
    md = md.replace("<!-- FIG12_TABLE -->", fig12_table())
md = md.replace("<!-- TABLE3 -->", simple_json_table("results/table3_alexnet.json",
    ["config","top1","top5"]))

abl = []
for name, cols in [
    ("ablation_multiresidue", ["bs","check_bits","theoretical_escape","measured_silent_escapes","trials"]),
    ("ablation_group_size", ["operands","check_bits_per_128","misclassification"]),
    ("ablation_policy", ["policy","retries","misclassification"]),
    ("ablation_rtn_offset", ["rtn_offset","scheme","misclassification"]),
    ("ablation_table_depth", ["max_rows_per_event","misclassification"]),
]:
    abl.append(f"\n### {name}\n")
    abl.append(simple_json_table(f"results/{name}.json", cols))
md = md.replace("<!-- ABLATIONS -->", "\n".join(abl))
open("EXPERIMENTS.md","w").write(md)
print("EXPERIMENTS.md updated")
