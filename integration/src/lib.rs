//! Cross-crate integration tests live in integration/tests/.
