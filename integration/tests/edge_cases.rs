//! Edge-case coverage across the workspace: boundary dimensions,
//! degenerate configurations, and API contract checks.

use accel::{cost, AccelConfig, CrossbarProvider, ProtectionScheme};
use ancode::{AbnCode, AnCode, CorrectionPolicy, GroupLayout, OperandGroup, SyndromeFamily};
use neural::{MvmEngineProvider, QuantizedMatrix, Tensor};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wideint::{I256, U256};
use xbar::{Adc, BitSlicer, CrossbarArray, DeviceParams, InputMask};

// ---------------------------------------------------------------- codes

#[test]
fn burst2_family_corrects_magnitude_three_end_to_end() {
    // A code whose table covers the Burst2 family fixes ±3 errors in a
    // single row — the "quantization error of 3 in one physical row"
    // case of §V-A.
    let an = AnCode::new(167).unwrap();
    let family = SyndromeFamily::Burst2 { width: 12 };
    let table = ancode::CorrectionTable::for_family(&an, family).unwrap();
    let code = AbnCode::from_table(167, 3, table, 12).unwrap();
    let clean = code.encode(U256::from(1000u64)).unwrap();
    for delta in [3i128, -3, 6, -12, 2, 1] {
        let outcome = code.decode(
            I256::from(clean) + I256::from_i128(delta),
            CorrectionPolicy::Revert,
        );
        assert!(outcome.status.was_corrected(), "delta {delta}");
        assert_eq!(outcome.value.to_i128(), Some(1000), "delta {delta}");
    }
}

#[test]
fn abn_codes_accept_other_primes_for_b() {
    for b in [3u64, 5, 7, 11] {
        let code = AbnCode::classic(41, b, 8).unwrap();
        let clean = code.encode(U256::from(100u64)).unwrap();
        let out = code.decode(clean.into(), CorrectionPolicy::Revert);
        assert_eq!(out.value.to_i128(), Some(100), "B = {b}");
    }
    // B sharing a factor with A is rejected (e.g. 41·41).
    assert!(AbnCode::classic(41, 41, 8).is_err());
}

#[test]
fn single_operand_group_layout() {
    let group = OperandGroup::new(GroupLayout::new(16, 1).unwrap());
    assert_eq!(group.pack(&[123]).unwrap(), U256::from(123u64));
    assert_eq!(group.unpack(U256::from(123u64)), vec![123]);
    assert_eq!(group.split_signed(I256::from_i128(-9)), vec![-9]);
}

#[test]
fn max_width_group_layout() {
    // 12 × 16 bits = 192 ≤ 200: largest supported packing.
    let layout = GroupLayout::new(16, 12).unwrap();
    let group = OperandGroup::new(layout);
    let ops: Vec<u64> = (0..12).map(|i| (i * 5461) as u64).collect();
    let packed = group.pack(&ops).unwrap();
    assert_eq!(group.unpack(packed), ops);
}

// ------------------------------------------------------------- crossbar

#[test]
fn adc_saturates_at_composition_limits() {
    let params = DeviceParams::default();
    let adc = Adc::new(&params);
    let mask = InputMask::all_ones(128);
    // Far beyond the representable range on both sides.
    assert_eq!(adc.quantize(1e3, &mask), 128 * 3);
    assert_eq!(adc.quantize(-1e3, &mask), 0);
}

#[test]
fn eight_bit_cells_slice_one_row_per_16_bit_word_pair() {
    let slicer = BitSlicer::new(8, 16);
    assert_eq!(slicer.rows_per_word(), 2);
    let rows = slicer.slice_words(&[0xAB_CD]);
    assert_eq!(rows[0][0], 0xCD);
    assert_eq!(rows[1][0], 0xAB);
}

#[test]
fn single_cell_array_reads() {
    let params = DeviceParams {
        rtn_state_probability: 0.0,
        programming_tolerance: 0.0,
        fault_rate: 0.0,
        bandwidth: 0.0,
        ..DeviceParams::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(70);
    let array = CrossbarArray::program(&[vec![2]], &params, &mut rng);
    let mask = InputMask::all_ones(1);
    assert_eq!(array.read_row(0, &mask, &mut rng), 2);
    assert_eq!(array.read_row(0, &InputMask::zeros(1), &mut rng), 0);
}

#[test]
fn worst_case_input_maximizes_error_probability() {
    // §V-B5: "the case of all ones for the vector creates the worst
    // case error probability".
    let params = DeviceParams::default();
    let dense = xbar::rowerr::predict_composition(&[0, 0, 0, 128], &params).p_any();
    let half = xbar::rowerr::predict_composition(&[0, 0, 0, 64], &params).p_any();
    assert!(dense >= half);
}

// ------------------------------------------------------------------ nn

#[test]
fn quantized_matrix_handles_extreme_weights() {
    let w = Tensor::from_vec(vec![1, 4], vec![1e6, -1e6, 0.0, 1e-9]);
    let q = QuantizedMatrix::from_tensor(&w);
    // Extremes clamp to the biased range; zero maps to the bias point.
    assert_eq!(q.rows()[0][2], 32768);
    assert!(q.rows()[0][0] > 60000);
    assert!(q.rows()[0][1] < 2000);
}

#[test]
fn dataset_image_slices_are_disjoint_views() {
    let d = neural::data::digits(4, 1);
    assert_eq!(d.image(0).len(), 784);
    assert_ne!(d.image(0), d.image(1));
}

// ----------------------------------------------------------------- accel

#[test]
#[should_panic(expected = "input length mismatch")]
fn engine_rejects_wrong_input_length() {
    let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![2, 4], vec![0.5; 8]));
    let provider = CrossbarProvider::new(AccelConfig::new(ProtectionScheme::None), 1);
    let mut engine = provider.build(&matrix);
    engine.mvm(&[1, 2, 3]); // needs 4 inputs
}

#[test]
fn chunk_boundary_exactness() {
    // A matrix exactly at, below, and above the 128-column boundary is
    // exact without noise.
    let mut config = AccelConfig::new(ProtectionScheme::data_aware(9));
    config.device.rtn_state_probability = 0.0;
    config.device.programming_tolerance = 0.0;
    config.device.fault_rate = 0.0;
    config.device.bandwidth = 0.0;
    for cols in [127usize, 128, 129, 256] {
        let weights: Vec<f32> = (0..4 * cols).map(|i| ((i % 7) as f32 - 3.0) / 4.0).collect();
        let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![4, cols], weights));
        let input: Vec<u16> = (0..cols).map(|j| (j * 97 % 65536) as u16).collect();
        let expected: Vec<i64> = matrix
            .rows()
            .iter()
            .map(|r| r.iter().zip(&input).map(|(&w, &x)| w as i64 * x as i64).sum())
            .collect();
        let provider = CrossbarProvider::new(config.clone(), 2);
        let mut engine = provider.build(&matrix);
        assert_eq!(engine.mvm(&input), expected, "cols = {cols}");
    }
}

#[test]
fn zero_input_vector_is_exact_everywhere() {
    let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(
        vec![8, 16],
        (0..128).map(|i| (i as f32 - 64.0) / 64.0).collect(),
    ));
    let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
    let provider = CrossbarProvider::new(config, 3);
    let mut engine = provider.build(&matrix);
    // All-zero input → all masks empty → no reads, no errors, zeros out.
    assert_eq!(engine.mvm(&vec![0u16; 16]), vec![0i64; 8]);
    assert_eq!(provider.stats().total(), 0);
}

#[test]
fn cost_model_rejects_bad_rates() {
    let result = std::panic::catch_unwind(|| cost::relative_throughput(1.5, 1.0));
    assert!(result.is_err());
}

#[test]
fn cost_components_positive_and_finite() {
    for bits in 1..=12 {
        let e = cost::ecu_cost(bits);
        let t = cost::table_cost(bits);
        assert!(e.area_mm2 > 0.0 && e.area_mm2.is_finite());
        assert!(t.power_mw > 0.0 && t.power_mw.is_finite());
    }
}

#[test]
fn scheme_grid_check_bits_ordering() {
    // Static16 pays far more storage than any dynamic code.
    let static16 = ProtectionScheme::Static16.check_bits_per_group();
    for bits in 7..=10 {
        assert!(ProtectionScheme::data_aware(bits).check_bits_per_group() < static16);
    }
}

// ------------------------------------------------------------ wide ints

#[test]
fn u256_divides_by_itself() {
    let v = U256::from_limbs([7, 7, 7, 7]);
    let (q, r) = v.div_rem(v).unwrap();
    assert_eq!(q, U256::ONE);
    assert!(r.is_zero());
}

#[test]
fn i256_shift_roundtrips_through_division() {
    let x = I256::from_i128(-12345);
    let shifted = x.shifted_left(40);
    assert_eq!(shifted.to_i128(), Some(-12345i128 << 40));
}

#[test]
#[should_panic(expected = "shift overflow")]
fn i256_shift_overflow_panics() {
    let _ = I256::from(U256::MAX).shifted_left(1);
}
