//! End-to-end integration: training → quantization → noisy accelerator
//! → decoded outputs, across protection schemes.

use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use neural::{
    data, models, ExactProvider, MvmEngineProvider, QuantizedMatrix, QuantizedNetwork, Tensor,
};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn noiseless(scheme: ProtectionScheme) -> AccelConfig {
    let mut c = AccelConfig::new(scheme);
    c.device.rtn_state_probability = 0.0;
    c.device.programming_tolerance = 0.0;
    c.device.fault_rate = 0.0;
    c.device.bandwidth = 0.0;
    c
}

/// All four schemes agree exactly with the software fixed-point result
/// when every noise source is disabled — the accelerator datapath
/// (packing, encoding, slicing, ADC, reduction, decoding, lane split)
/// is end-to-end exact.
#[test]
fn all_schemes_exact_without_noise() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut net = models::mlp2(&mut rng);
    let train = data::digits(120, 3);
    net.train_epoch(&train.images, &train.labels, 24, 0.1);
    let qnet = QuantizedNetwork::from_network(&net);

    let test = data::digits(4, 77);
    let per = test.images.len() / test.len();
    let mut exact = qnet.build_engines(&ExactProvider);

    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::Static16,
        ProtectionScheme::Static128,
        ProtectionScheme::data_aware(9),
    ] {
        let provider = CrossbarProvider::new(noiseless(scheme.clone()), 1);
        let mut engines = qnet.build_engines(&provider);
        for i in 0..test.len() {
            let img = &test.images.data()[i * per..(i + 1) * per];
            let noisy_logits = qnet.run(img, &mut engines);
            let exact_logits = qnet.run(img, &mut exact);
            for (a, b) in noisy_logits.iter().zip(&exact_logits) {
                assert_eq!(a, b, "scheme {} diverged", scheme.label());
            }
        }
    }
}

/// The quantized pipeline itself tracks the float network closely.
#[test]
fn quantization_error_is_small() {
    let mut rng = ChaCha8Rng::seed_from_u64(32);
    let mut net = models::mlp2(&mut rng);
    let train = data::digits(150, 5);
    for _ in 0..2 {
        net.train_epoch(&train.images, &train.labels, 30, 0.1);
    }
    let qnet = QuantizedNetwork::from_network(&net);
    let mut engines = qnet.build_engines(&ExactProvider);

    let test = data::digits(6, 99);
    let per = test.images.len() / test.len();
    for i in 0..test.len() {
        let img = Tensor::from_vec(
            vec![1, 1, 28, 28],
            test.images.data()[i * per..(i + 1) * per].to_vec(),
        );
        let float_logits = net.forward(&img);
        let quant_logits = qnet.run(img.data(), &mut engines);
        let scale = float_logits.max_abs().max(1.0);
        for (f, q) in float_logits.data().iter().zip(&quant_logits) {
            assert!(
                (f - q).abs() / scale < 0.02,
                "image {i}: float {f} vs quant {q}"
            );
        }
    }
}

/// Under aggressive noise (5-bit cells), the data-aware code keeps the
/// accelerator closer to the exact result than no protection, measured
/// as total absolute output deviation across MVMs.
#[test]
fn data_aware_beats_unprotected_under_noise() {
    let weights: Vec<f32> = (0..24 * 64)
        .map(|i| ((i as f32) * 0.377).sin() * 0.9)
        .collect();
    let matrix = QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![24, 64], weights));
    let input: Vec<u16> = (0..64).map(|j| (j as u16).wrapping_mul(911)).collect();
    let truth: Vec<i64> = matrix
        .rows()
        .iter()
        .map(|r| r.iter().zip(&input).map(|(&w, &x)| w as i64 * x as i64).sum())
        .collect();

    let deviation = |scheme: ProtectionScheme| -> f64 {
        let mut config = AccelConfig::new(scheme).with_cell_bits(5).with_fault_rate(0.0);
        config.device.programming_tolerance = 0.0;
        let provider = CrossbarProvider::new(config, 77);
        let mut engine = provider.build(&matrix);
        let mut total = 0.0;
        for _ in 0..4 {
            let out = engine.mvm(&input);
            total += out
                .iter()
                .zip(&truth)
                .map(|(&o, &t)| (o - t).abs() as f64)
                .sum::<f64>();
        }
        total
    };

    let unprotected = deviation(ProtectionScheme::None);
    let protected = deviation(ProtectionScheme::data_aware(10));
    assert!(
        protected < unprotected,
        "protected {protected} vs unprotected {unprotected}"
    );
}

/// Misclassification ordering on a trained network under noise:
/// software ≤ protected ≤ roughly unprotected (allowing Monte-Carlo
/// slack), and all rates are valid probabilities.
#[test]
fn network_accuracy_ordering_sane() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let mut net = models::mlp2(&mut rng);
    let mut train = data::digits(600, 21);
    data::shuffle(&mut train, 4);
    for _ in 0..4 {
        net.train_epoch(&train.images, &train.labels, 32, 0.1);
    }
    let qnet = QuantizedNetwork::from_network(&net);
    let test = data::digits(10, 55);

    for scheme in [ProtectionScheme::None, ProtectionScheme::data_aware(9)] {
        let config = AccelConfig::new(scheme).with_cell_bits(2).with_fault_rate(0.0);
        let result =
            accel::sim::evaluate(&qnet, &test.images, &test.labels, &config, 9, 1).expect("evaluate");
        assert!((0.0..=1.0).contains(&result.misclassification));
        assert!(result.top5_misclassification <= result.misclassification);
        assert_eq!(result.samples, 10);
    }
}

/// Decode statistics flow from engines through the provider.
#[test]
fn provider_stats_visible_across_engines() {
    let mut rng = ChaCha8Rng::seed_from_u64(34);
    let mut net = models::mlp2(&mut rng);
    let train = data::digits(60, 8);
    net.train_epoch(&train.images, &train.labels, 20, 0.1);
    let qnet = QuantizedNetwork::from_network(&net);

    let config = AccelConfig::new(ProtectionScheme::data_aware(8)).with_fault_rate(0.0);
    let provider = CrossbarProvider::new(config, 3);
    let mut engines = qnet.build_engines(&provider);
    assert_eq!(engines.len(), 2); // MLP2 has two dense layers
    let img = data::digits(1, 9);
    qnet.run(img.image(0), &mut engines);
    let stats = provider.stats();
    assert!(stats.total() > 0, "stats should accumulate: {stats:?}");
}
