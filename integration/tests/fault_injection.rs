//! Fault-injection integration tests: deterministic error scenarios
//! pushed through the full decode path.

use accel::{mapping, AccelConfig, ProtectionScheme};
use ancode::{CorrectionPolicy, DecodeStatus, Syndrome};
use neural::MvmEngineProvider;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wideint::{I256, U256};

fn noiseless(scheme: ProtectionScheme) -> AccelConfig {
    let mut c = AccelConfig::new(scheme);
    c.device.rtn_state_probability = 0.0;
    c.device.programming_tolerance = 0.0;
    c.device.fault_rate = 0.0;
    c.device.bandwidth = 0.0;
    c
}

fn biased(w: i32) -> u16 {
    (w + 32768) as u16
}

/// Maps one 8-row group noiselessly, reads every row under a mask, and
/// verifies the reduced group value decodes to the exact packed sum —
/// then injects row-level errors into the reduced value and checks the
/// code's verdicts.
#[test]
fn injected_row_errors_follow_decode_contract() {
    // Wide rows so the binomial predictor assigns real probabilities
    // (the data-aware table is built from the default noisy device
    // model; error injection below is digital and deterministic).
    let rows: Vec<Vec<u16>> = (0..8)
        .map(|o| (0..96).map(|j| biased((o * j) as i32 - 40)).collect())
        .collect();
    let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(50);
    let mapped = mapping::map_matrix(&rows, &config, &mut rng).unwrap();
    let stack = &mapped.stacks[0][0];
    let code = stack.code.as_ref().unwrap();

    // Compute the clean group value digitally: the sum of the encoded
    // per-column blocks under the all-ones mask.
    let group = ancode::OperandGroup::new(config.group);
    let mut packed_sum = U256::ZERO;
    for j in 0..96 {
        let ops: Vec<u64> = (0..8).map(|o| rows[o][j] as u64).collect();
        packed_sum = packed_sum + group.pack(&ops).unwrap();
    }
    let clean = packed_sum.checked_mul_u64(code.multiplier()).unwrap();

    // Clean decode.
    let outcome = code.decode(clean.into(), CorrectionPolicy::Revert);
    assert_eq!(outcome.status, DecodeStatus::Clean);

    // Single-row ±1 errors whose exact syndrome is in the table must
    // decode back to the clean value; errors that merely *alias* a
    // different entry may miscorrect (the §V-A hazard) — those are not
    // asserted exact.
    let clean_value = outcome.value;
    let mut covered = 0;
    for row in 0..stack.array.row_count() {
        let bit = stack.slicer.row_lsb(row as u32);
        let syndrome = Syndrome::single(bit, 1);
        let residue = ancode::AnCode::new(code.a()).unwrap().residue(syndrome.value());
        let table_hit = code
            .table()
            .lookup(residue)
            .is_some_and(|e| e.syndrome == syndrome);
        let observed = I256::from(clean) + syndrome.value();
        let outcome = code.decode(observed, CorrectionPolicy::Revert);
        if table_hit {
            assert!(outcome.status.was_corrected(), "row {row}: {:?}", outcome.status);
            assert_eq!(outcome.value, clean_value, "row {row}");
            covered += 1;
        }
    }
    assert!(covered > 0, "the table should cover at least one row exactly");
}

/// With a 100 % stuck-cell array, the data-aware construction still
/// produces a working split-table code and nois(eless) reads reflect
/// the stuck values deterministically.
#[test]
fn fully_stuck_array_still_maps() {
    let rows: Vec<Vec<u16>> = (0..8).map(|_| vec![biased(100); 8]).collect();
    let mut config = noiseless(ProtectionScheme::data_aware(9));
    config.device.fault_rate = 1.0;
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let mapped = mapping::map_matrix(&rows, &config, &mut rng).unwrap();
    let stack = &mapped.stacks[0][0];
    let code = stack.code.as_ref().unwrap();
    // Stuck rows exist, so the stuck-aware half must be bounded by
    // capacity/2 and the transient half nonempty or empty (all rows
    // stuck means most candidates involve stuck rows).
    let (_, stuck) = code.table().half_sizes();
    assert!(stuck <= (code.a() as usize - 1) / 2);
    assert!(stack.array.rows().iter().all(|r| r.has_stuck()));
}

/// The Figure 3 story: an additive error of +1 can flip four bits of
/// the binary representation yet remain a distance-1 arithmetic error —
/// and the AN machinery corrects it where a Hamming view would not.
#[test]
fn figure_3_arithmetic_vs_hamming_distance() {
    let code = ancode::AbnCode::classic(19, 3, 4).unwrap();
    let seven = code.encode(U256::from(7u64)).unwrap();
    let observed = I256::from(seven) + I256::from_i128(1);
    // Binary 0111 + 1 = 1000: Hamming distance 4 from the true value,
    // arithmetic distance 1.
    let outcome = code.decode(observed, CorrectionPolicy::Revert);
    assert!(outcome.status.was_corrected());
    assert_eq!(outcome.value.to_i128(), Some(7));
}

/// Retries recover borderline thermal-noise errors but cannot fix a
/// persistent stuck-at-dominated group: the retry loop must terminate
/// and fall back to the policy value.
#[test]
fn retries_terminate_on_persistent_errors() {
    let mut config = AccelConfig::new(ProtectionScheme::data_aware(7)).with_fault_rate(0.05);
    config.max_retries = 3;
    config.device.rtn_state_probability = 0.4; // heavy noise
    let provider = accel::CrossbarProvider::new(config, 52);
    let matrix = neural::QuantizedMatrix::from_tensor(&neural::Tensor::from_vec(
        vec![8, 32],
        (0..8 * 32).map(|i| ((i % 100) as f32) / 100.0 - 0.4).collect(),
    ));
    let mut engine = provider.build(&matrix);
    let input: Vec<u16> = (0..32).map(|i| (i * 2000) as u16).collect();
    // Must terminate (bounded retries) and produce outputs.
    let out = engine.mvm(&input);
    assert_eq!(out.len(), 8);
}
