//! Cross-crate property tests: the noiseless accelerator datapath is an
//! exact MVM for arbitrary matrices, schemes, and cell widths.

use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
use neural::{MvmEngineProvider, QuantizedMatrix, Tensor};
use proptest::prelude::*;

fn noiseless(scheme: ProtectionScheme, bits: u32) -> AccelConfig {
    let mut c = AccelConfig::new(scheme).with_cell_bits(bits);
    c.device.rtn_state_probability = 0.0;
    c.device.programming_tolerance = 0.0;
    c.device.fault_rate = 0.0;
    c.device.bandwidth = 0.0;
    c
}

fn exact(matrix: &QuantizedMatrix, input: &[u16]) -> Vec<i64> {
    matrix
        .rows()
        .iter()
        .map(|row| row.iter().zip(input).map(|(&w, &x)| w as i64 * x as i64).sum())
        .collect()
}

fn matrix_strategy() -> impl Strategy<Value = (QuantizedMatrix, Vec<u16>)> {
    (1usize..12, 1usize..20).prop_flat_map(|(out, inp)| {
        (
            proptest::collection::vec(-1.0f32..1.0, out * inp),
            proptest::collection::vec(any::<u16>(), inp),
        )
            .prop_map(move |(w, input)| {
                (
                    QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![out, inp], w)),
                    input,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn noiseless_unprotected_exact((matrix, input) in matrix_strategy()) {
        let provider = CrossbarProvider::new(noiseless(ProtectionScheme::None, 2), 1);
        let mut engine = provider.build(&matrix);
        prop_assert_eq!(engine.mvm(&input), exact(&matrix, &input));
    }

    #[test]
    fn noiseless_data_aware_exact((matrix, input) in matrix_strategy()) {
        let provider = CrossbarProvider::new(noiseless(ProtectionScheme::data_aware(9), 2), 2);
        let mut engine = provider.build(&matrix);
        prop_assert_eq!(engine.mvm(&input), exact(&matrix, &input));
    }

    #[test]
    fn noiseless_exact_any_cell_width(
        (matrix, input) in matrix_strategy(),
        bits in 1u32..=5,
    ) {
        let provider = CrossbarProvider::new(noiseless(ProtectionScheme::Static16, bits), 3);
        let mut engine = provider.build(&matrix);
        prop_assert_eq!(engine.mvm(&input), exact(&matrix, &input));
    }

    #[test]
    fn repeated_reads_are_deterministic_without_noise((matrix, input) in matrix_strategy()) {
        let provider = CrossbarProvider::new(noiseless(ProtectionScheme::Static128, 3), 4);
        let mut engine = provider.build(&matrix);
        let first = engine.mvm(&input);
        prop_assert_eq!(engine.mvm(&input), first);
    }
}
