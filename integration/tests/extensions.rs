//! Integration tests for the extension modules: multiresidue detection,
//! hierarchy planning, fault-aware remapping, and endurance — and their
//! composition with the core pipeline.

use accel::hierarchy::{plan_network, HierarchyConfig};
use accel::{remap, AccelConfig, CrossbarProvider, ProtectionScheme};
use ancode::multiresidue::MultiResidueCode;
use ancode::{AnCode, CorrectionPolicy, CorrectionTable};
use neural::{models, MvmEngineProvider, QuantizedNetwork};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wideint::{I256, U256};
use xbar::endurance::{EnduranceParams, WearTracker};

/// Multiresidue detection composes with analog-style summed operands:
/// the distributive property holds for `A·B₁·B₂` exactly as for `A·B`.
#[test]
fn multiresidue_conserves_addition() {
    let an = AnCode::new(41).unwrap();
    let table = CorrectionTable::for_single_bit_prefix(&an, 12);
    let code = MultiResidueCode::new(41, &[3, 5], table, 10).unwrap();
    let x = code.encode(U256::from(100u64)).unwrap();
    let y = code.encode(U256::from(333u64)).unwrap();
    let out = code.decode((x + y).into(), CorrectionPolicy::Revert);
    assert_eq!(out.value.to_i128(), Some(433));
    assert!(out.status.is_trusted());
}

/// Endurance wear feeding back into the fault-rate configuration: a
/// worn array evaluated with the matching stuck-at rate still maps and
/// runs under the split-table codes.
#[test]
fn wear_out_feeds_fault_rate() {
    let params = EnduranceParams::default();
    let mut rng = ChaCha8Rng::seed_from_u64(80);
    let mut tracker = WearTracker::new(10_000, &params, &mut rng);
    tracker.record_writes(2_000_000); // early-life wear
    let measured_rate = tracker.failure_rate();
    assert!(measured_rate < 0.2, "early-life rate {measured_rate}");

    // Configure the accelerator with the measured wear-out rate.
    let config = AccelConfig::new(ProtectionScheme::data_aware(9))
        .with_fault_rate(measured_rate.max(1e-4));
    let matrix = neural::QuantizedMatrix::from_tensor(&neural::Tensor::from_vec(
        vec![8, 32],
        (0..256).map(|i| ((i % 17) as f32 - 8.0) / 10.0).collect(),
    ));
    let provider = CrossbarProvider::new(config, 81);
    let mut engine = provider.build(&matrix);
    let out = engine.mvm(&vec![1000u16; 32]);
    assert_eq!(out.len(), 8);
}

/// The hierarchy plan and the actual mapping agree on physical row
/// counts for a dense layer.
#[test]
fn plan_matches_mapping_row_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(82);
    let net = models::mlp2(&mut rng);
    let qnet = QuantizedNetwork::from_network(&net);
    let config = AccelConfig::new(ProtectionScheme::None);
    let plan = plan_network(&qnet, &config, &HierarchyConfig::default());

    let mut mapped_rows = 0usize;
    let mut map_rng = ChaCha8Rng::seed_from_u64(83);
    for matrix in qnet.mvm_matrices() {
        let mapped = accel::mapping::map_matrix(matrix.rows(), &config, &mut map_rng).unwrap();
        mapped_rows += mapped.total_physical_rows();
    }
    assert_eq!(plan.data_rows + plan.check_rows, mapped_rows);
}

/// A remapped matrix produces the same noiseless outputs (restored to
/// the original order) as the unmapped matrix.
#[test]
fn remap_preserves_noiseless_semantics() {
    let rows: Vec<Vec<u16>> = (0..16)
        .map(|o| {
            (0..24)
                .map(|j| (32768i64 + ((o * 101 + j * 13) % 2000) as i64 - 1000) as u16)
                .collect()
        })
        .collect();
    let mut config = AccelConfig::new(ProtectionScheme::data_aware(9));
    config.device.rtn_state_probability = 0.0;
    config.device.programming_tolerance = 0.0;
    config.device.fault_rate = 0.0;
    config.device.bandwidth = 0.0;

    let input: Vec<u16> = (0..24).map(|j| (j * 713) as u16).collect();
    let reference: Vec<i64> = rows
        .iter()
        .map(|r| r.iter().zip(&input).map(|(&w, &x)| w as i64 * x as i64).sum())
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(84);
    let plan = remap::fault_aware_order(&rows, &config, &mut rng);
    let remapped_rows = plan.apply(&rows);

    // The remapped rows still map onto stacks without error…
    let mapped = accel::mapping::map_matrix(&remapped_rows, &config, &mut rng).unwrap();
    assert_eq!(mapped.out_dim, 16);

    // …and their dot products, restored to original order, match the
    // unmapped reference exactly.
    let remapped_out: Vec<i64> = remapped_rows
        .iter()
        .map(|r| r.iter().zip(&input).map(|(&w, &x)| w as i64 * x as i64).sum())
        .collect();
    let restored = plan.restore_outputs(&remapped_out);
    assert_eq!(restored, reference);
}

/// Multiresidue codes slot into a table built by the data-aware
/// allocator (not just the static prefix builder).
#[test]
fn multiresidue_with_data_aware_table() {
    use ancode::data_aware::{build_table, DataAwareConfig};
    use ancode::{RowError, RowErrorModel};

    let model = RowErrorModel::new(
        (0..6).map(|r| RowError::symmetric(r * 2, 0.02 * (r + 1) as f64)).collect(),
        16,
    );
    let table = build_table(79, &model, &DataAwareConfig::default()).unwrap();
    let code = MultiResidueCode::new(79, &[3, 5], table, 12).unwrap();
    let clean = code.encode(U256::from(900u64)).unwrap();
    // The dominant row error (bit 10, +1) is covered and corrected.
    let observed = I256::from(clean) + I256::from_i128(1 << 10);
    let out = code.decode(observed, CorrectionPolicy::Revert);
    assert!(out.status.was_corrected());
    assert_eq!(out.value.to_i128(), Some(900));
}
