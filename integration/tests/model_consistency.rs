//! Consistency between the three error-model fidelities: the analytical
//! binomial predictor (§V-B5), the Monte-Carlo array sampler, and the
//! transient (SPICE-equivalent) simulator must agree on the error-rate
//! regime for the same row state.

use analog::TransientRow;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar::{rowerr, CrossbarArray, DeviceParams, InputMask};

fn fig7_levels() -> Vec<u32> {
    (0..128).map(|i| i % 4).collect()
}

fn clean_params() -> DeviceParams {
    DeviceParams {
        fault_rate: 0.0,
        programming_tolerance: 0.0,
        ..DeviceParams::default()
    }
}

/// All three fidelities land in the same error-rate band for the
/// Figure 7 row (the paper reports 14.5 %).
#[test]
fn three_fidelities_agree_on_figure_7_row() {
    let params = clean_params();
    let mut rng = ChaCha8Rng::seed_from_u64(60);

    // 1. Analytical predictor.
    let predicted = rowerr::predict_composition(&[32, 32, 32, 32], &params).p_any();

    // 2. Monte-Carlo array reads.
    let array = CrossbarArray::program(&[fig7_levels()], &params, &mut rng);
    let mask = InputMask::all_ones(128);
    let ideal = array.ideal_row_output(0, &mask);
    let trials = 3000;
    let mc = (0..trials)
        .filter(|_| array.read_row(0, &mask, &mut rng) != ideal)
        .count() as f64
        / trials as f64;

    // 3. Transient simulation.
    let mut row = TransientRow::new(&fig7_levels(), &params, &mut rng);
    let trace = row.run(5e-3, 8000, &mut rng);
    let transient = trace.error_stats().total_rate();

    for (name, rate) in [("predicted", predicted), ("monte-carlo", mc), ("transient", transient)] {
        assert!(
            (0.01..0.45).contains(&rate),
            "{name} rate {rate} outside the Figure 7 regime"
        );
    }
    // Pairwise agreement within a factor of ~4 (they are different
    // models of the same physics, not the same estimator).
    let rates = [predicted, mc, transient];
    for a in rates {
        for b in rates {
            assert!(a < b * 4.0 + 0.02, "rates diverge: {rates:?}");
        }
    }
}

/// Frozen-RTN reads have the same marginal error rate as independent
/// reads (the snapshot changes correlation, not the per-read
/// distribution).
#[test]
fn frozen_and_independent_reads_same_marginal() {
    let params = clean_params();
    let mut rng = ChaCha8Rng::seed_from_u64(61);
    let array = CrossbarArray::program(&[fig7_levels()], &params, &mut rng);
    let mask = InputMask::all_ones(128);
    let ideal = array.ideal_row_output(0, &mask);

    let trials = 3000;
    let independent = (0..trials)
        .filter(|_| array.read_row(0, &mask, &mut rng) != ideal)
        .count() as f64
        / trials as f64;
    let frozen = (0..trials)
        .filter(|_| {
            let snap = array.sample_rtn(&mut rng);
            array.read_row_frozen(0, &mask, &snap, &mut rng) != ideal
        })
        .count() as f64
        / trials as f64;

    assert!(
        (independent - frozen).abs() < 0.05,
        "independent {independent} vs frozen {frozen}"
    );
}

/// The data-aware allocator consumes exactly the probabilities the
/// predictor produces: a model with a hot MSB row yields a table whose
/// top-probability entry involves that row.
#[test]
fn predictor_feeds_allocator_coherently() {
    use ancode::data_aware::{build_table, DataAwareConfig};
    use ancode::{RowError, RowErrorModel};

    let params = DeviceParams::default();
    // Hot row: all 128 cells at max level; cold row: nearly empty.
    let hot = rowerr::predict_composition(&[0, 0, 0, 128], &params);
    let cold = rowerr::predict_composition(&[120, 8, 0, 0], &params);
    assert!(hot.p_any() > cold.p_any());

    let model = RowErrorModel::new(
        vec![
            RowError {
                lsb_bit: 0,
                p_high: cold.p_high,
                p_low: cold.p_low,
                stuck: false,
            },
            RowError {
                lsb_bit: 14,
                p_high: hot.p_high,
                p_low: hot.p_low,
                stuck: false,
            },
        ],
        16,
    );
    let table = build_table(41, &model, &DataAwareConfig::default()).unwrap();
    let best = table
        .iter()
        .max_by(|a, b| a.1.probability.partial_cmp(&b.1.probability).unwrap())
        .expect("table not empty");
    assert_eq!(best.1.syndrome.msb(), 14, "hot row should dominate");
}

/// RTN parameter sweeps move all fidelities in the same direction.
#[test]
fn sensitivity_directions_consistent() {
    let base = clean_params();
    let hot = DeviceParams {
        rtn_state_probability: 0.37,
        ..clean_params()
    };
    let comp = [16, 16, 16, 80];
    let p_base = rowerr::predict_composition(&comp, &base).p_any();
    let p_hot = rowerr::predict_composition(&comp, &hot).p_any();

    let mut rng = ChaCha8Rng::seed_from_u64(62);
    let levels: Vec<u32> = (0..128)
        .map(|i| if i < 80 { 3 } else { (i % 3) as u32 })
        .collect();
    let mc_rate = |params: &DeviceParams, rng: &mut ChaCha8Rng| {
        let array = CrossbarArray::program(&[levels.clone()], params, rng);
        let mask = InputMask::all_ones(128);
        let ideal = array.ideal_row_output(0, &mask);
        (0..1500)
            .filter(|_| array.read_row(0, &mask, rng) != ideal)
            .count() as f64
            / 1500.0
    };
    let m_base = mc_rate(&base, &mut rng);
    let m_hot = mc_rate(&hot, &mut rng);

    // Both fidelities agree on the direction of the Figure 12 sweep.
    assert!(p_hot >= p_base * 0.8, "predictor: {p_base} → {p_hot}");
    assert!(m_hot >= m_base * 0.8, "monte-carlo: {m_base} → {m_hot}");
}
